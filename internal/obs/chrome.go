package obs

import (
	"io"
	"strconv"
	"time"

	"pimcapsnet/internal/trace"
)

// chromePID is the synthetic "process" all serving spans render
// under; each request gets its own track (tid), so Perfetto shows one
// Gantt row per request exactly like the simulator's per-vault rows.
const chromePID = 1

// WriteChromeTrace renders completed request traces as Chrome
// trace-event JSON (load it in Perfetto or chrome://tracing).
// Timestamps are microseconds since epoch — pass the tracer's Epoch
// so concurrent requests line up on one timeline. Per request it
// emits one complete ("X") event per span, an instant ("i") marker at
// completion, and a running counter ("C") of completed requests.
func WriteChromeTrace(w io.Writer, traces []*Trace, epoch time.Time) error {
	log := BuildChromeLog(traces, epoch)
	return log.WriteJSON(w)
}

// BuildChromeLog is WriteChromeTrace without the serialization: it
// returns the trace.Log so callers can merge in events of their own
// (e.g. capsnet-serve's whole-run -trace-out file).
func BuildChromeLog(traces []*Trace, epoch time.Time) *trace.Log {
	log := &trace.Log{}
	ts := func(t time.Time) float64 {
		return float64(t.Sub(epoch).Nanoseconds()) / 1e3
	}
	for i, t := range traces {
		if t == nil {
			continue
		}
		tid := i + 1
		parent := t.Parent()
		for _, s := range t.Spans() {
			args := map[string]string{"trace_id": t.ID}
			if s.Iter >= 0 {
				args["iteration"] = strconv.Itoa(s.Iter)
			}
			if s.ID != "" {
				args["span_id"] = s.ID
			}
			switch {
			case s.Parent != "":
				args["parent_span"] = s.Parent
			case parent != "":
				args["parent_span"] = parent
			}
			for k, v := range s.Tags {
				args[k] = v
			}
			dur := ts(s.End) - ts(s.Start)
			if dur < 0 {
				dur = 0
			}
			log.Complete(s.Name, "serve", chromePID, tid, ts(s.Start), dur, args)
		}
		end := t.EndTime()
		if !end.IsZero() {
			log.Instant("request_done", "serve", chromePID, tid, ts(end),
				map[string]string{"trace_id": t.ID})
			log.Counter("completed_requests", chromePID, ts(end),
				map[string]float64{"requests": float64(i + 1)})
		}
	}
	return log
}
