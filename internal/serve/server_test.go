package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"pimcapsnet/internal/capsnet"
	"pimcapsnet/internal/dataset"
)

// testNetwork builds a small seeded network plus matching synthetic
// images for end-to-end tests.
func testNetwork(t testing.TB, classes int) (*capsnet.Network, [][]float32) {
	t.Helper()
	net, err := capsnet.New(capsnet.TinyConfig(classes))
	if err != nil {
		t.Fatal(err)
	}
	spec := dataset.Tiny(classes)
	gen := dataset.NewGenerator(spec)
	images := make([][]float32, 2*classes)
	for i := range images {
		images[i] = make([]float32, net.ImageLen())
		gen.Sample(images[i], i%classes)
	}
	return net, images
}

func postClassify(t testing.TB, url string, img []float32) (*http.Response, ClassifyResponse) {
	t.Helper()
	body, err := json.Marshal(ClassifyRequest{Image: img})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/classify", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var cr ClassifyResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
			t.Fatal(err)
		}
	}
	return resp, cr
}

// TestServeMatchesDirectForwardBitForBit spins up the server on a tiny
// seeded network and checks that responses — probabilities and pose
// vectors — are bit-identical to a direct Network.Forward call, both
// for sequential requests and for concurrent requests that share
// micro-batches (per-sample routing makes batching numerically
// invisible).
func TestServeMatchesDirectForwardBitForBit(t *testing.T) {
	const classes = 3
	net, images := testNetwork(t, classes)
	srv, err := New(net, capsnet.ExactMath{}, Config{MaxBatch: 4, MaxDelay: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Direct references, one forward per image (batch of one).
	type ref struct {
		probs []float32
		poses [][]float32
	}
	refs := make([]ref, len(images))
	nc, dd := net.Config.Classes, net.Config.DigitDim
	for i, img := range images {
		out := net.ForwardBatch([][]float32{img}, capsnet.ExactMath{})
		r := ref{probs: out.Lengths.Data()[:nc]}
		for j := 0; j < nc; j++ {
			r.poses = append(r.poses, out.Capsules.Data()[j*dd:(j+1)*dd])
		}
		refs[i] = r
	}

	check := func(i int, cr ClassifyResponse) {
		t.Helper()
		for j, p := range cr.Probs {
			if math.Float32bits(p) != math.Float32bits(refs[i].probs[j]) {
				t.Fatalf("image %d class %d: served prob %x, direct %x",
					i, j, math.Float32bits(p), math.Float32bits(refs[i].probs[j]))
			}
		}
		for j, pose := range cr.Poses {
			for d, v := range pose {
				if math.Float32bits(v) != math.Float32bits(refs[i].poses[j][d]) {
					t.Fatalf("image %d pose %d dim %d: served %x, direct %x",
						i, j, d, math.Float32bits(v), math.Float32bits(refs[i].poses[j][d]))
				}
			}
		}
	}

	// Sequential: each request rides its own batch.
	for i, img := range images {
		resp, cr := postClassify(t, ts.URL, img)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("image %d: status %d", i, resp.StatusCode)
		}
		check(i, cr)
	}

	// Concurrent: requests share micro-batches; numerics must not move.
	var wg sync.WaitGroup
	for i, img := range images {
		wg.Add(1)
		go func(i int, img []float32) {
			defer wg.Done()
			resp, cr := postClassify(t, ts.URL, img)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("image %d: status %d", i, resp.StatusCode)
				return
			}
			check(i, cr)
		}(i, img)
	}
	wg.Wait()

	if srv.Metrics().Batches() == 0 {
		t.Error("no batches recorded in metrics")
	}
}

// TestServerEndpoints covers model info, health, readiness, request
// validation, and the metrics exposition after traffic.
func TestServerEndpoints(t *testing.T) {
	const classes = 3
	net, images := testNetwork(t, classes)
	srv, err := New(net, capsnet.ExactMath{}, Config{MaxBatch: 2, MaxDelay: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	get := func(path string) (*http.Response, string) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp, string(b)
	}

	if resp, _ := get("/healthz"); resp.StatusCode != http.StatusOK {
		t.Errorf("healthz %d", resp.StatusCode)
	}
	if resp, _ := get("/readyz"); resp.StatusCode != http.StatusOK {
		t.Errorf("readyz %d", resp.StatusCode)
	}

	var info ModelInfo
	resp, body := get("/v1/model")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("model %d", resp.StatusCode)
	}
	if err := json.Unmarshal([]byte(body), &info); err != nil {
		t.Fatal(err)
	}
	if info.Classes != classes || info.Height != net.Config.InputH || info.RoutingMode != "per-sample" {
		t.Errorf("model info %+v inconsistent with config", info)
	}

	// Validation and method errors.
	if resp, _ := get("/v1/classify"); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET classify %d, want 405", resp.StatusCode)
	}
	if resp, _ := postClassify(t, ts.URL, []float32{1, 2, 3}); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("short image %d, want 400", resp.StatusCode)
	}

	// Real traffic, then the exposition must show non-zero histograms.
	if resp, _ := postClassify(t, ts.URL, images[0]); resp.StatusCode != http.StatusOK {
		t.Fatalf("classify %d", resp.StatusCode)
	}
	_, metricsText := get("/metrics")
	for _, want := range []string{
		"capsnet_batches_total 1",
		fmt.Sprintf("capsnet_routing_iterations_total %d", net.Config.RoutingIterations),
		`capsnet_batch_size_bucket{le="1"} 1`,
		// Three classify attempts hit the handler: the 405, the 400,
		// and the successful POST — every one observes latency.
		"capsnet_request_latency_seconds_count 3",
	} {
		if !strings.Contains(metricsText, want) {
			t.Errorf("metrics missing %q:\n%s", want, metricsText)
		}
	}

	// Draining flips readiness but not liveness.
	srv.StartDraining()
	if resp, _ := get("/readyz"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining readyz %d, want 503", resp.StatusCode)
	}
	if resp, _ := get("/healthz"); resp.StatusCode != http.StatusOK {
		t.Errorf("draining healthz %d, want 200", resp.StatusCode)
	}
}

// TestReadyzLoadBody covers the machine-readable /readyz contract the
// router tier's prober consumes: 200 with a JSON LoadInfo while
// serving, 503 with status "draining" afterwards, and load signals
// (inflight, batch occupancy) that reflect real traffic. The status
// codes must stay exactly the pre-JSON 200/503 pair.
func TestReadyzLoadBody(t *testing.T) {
	const classes = 3
	net, images := testNetwork(t, classes)
	srv, err := New(net, capsnet.ExactMath{}, Config{MaxBatch: 4, MaxDelay: time.Millisecond, QueueSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	readyz := func() (int, LoadInfo) {
		t.Helper()
		resp, err := http.Get(ts.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Errorf("readyz Content-Type %q, want application/json", ct)
		}
		var info LoadInfo
		if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
			t.Fatalf("readyz body is not LoadInfo JSON: %v", err)
		}
		return resp.StatusCode, info
	}

	code, info := readyz()
	if code != http.StatusOK || info.Status != "ready" {
		t.Fatalf("idle readyz: code %d status %q, want 200 ready", code, info.Status)
	}
	if info.QueueCapacity != 16 || info.MaxBatch != 4 {
		t.Errorf("configured bounds not reported: %+v", info)
	}
	if info.QueueDepth != 0 || info.Inflight != 0 || info.BatchOccupancy != 0 {
		t.Errorf("idle server reports load: %+v", info)
	}
	if info.PID <= 0 {
		t.Errorf("readyz PID %d, want the serving process id", info.PID)
	}

	// Traffic moves the signals: after a completed request, inflight is
	// back to zero but the last batch's occupancy is visible.
	if resp, _ := postClassify(t, ts.URL, images[0]); resp.StatusCode != http.StatusOK {
		t.Fatalf("classify %d", resp.StatusCode)
	}
	if _, info = readyz(); info.BatchOccupancy <= 0 || info.BatchOccupancy > 1 {
		t.Errorf("post-traffic occupancy %g, want in (0, 1]", info.BatchOccupancy)
	}
	if info.Inflight != 0 {
		t.Errorf("post-traffic inflight %d, want 0", info.Inflight)
	}

	srv.StartDraining()
	code, info = readyz()
	if code != http.StatusServiceUnavailable || info.Status != "draining" {
		t.Errorf("draining readyz: code %d status %q, want 503 draining", code, info.Status)
	}
}

// TestBatcherInflightGauge pins the inflight gauge against a gated
// batcher: admitted-but-unserved requests count, and the gauge returns
// to zero once they complete.
func TestBatcherInflightGauge(t *testing.T) {
	const classes = 3
	net, images := testNetwork(t, classes)
	cfg := Config{MaxBatch: 1, MaxDelay: time.Hour, QueueSize: 4}.withDefaults()
	m := NewMetrics()
	b := NewBatcher(cfg, echoRun, m, net.Config.RoutingIterations)
	b.timer = neverTimer
	srv := newServer(net, cfg, b, m) // batcher deliberately not started
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		postClassify(t, ts.URL, images[0])
	}()
	waitDepth(t, b, 1)
	if got := b.Inflight(); got != 1 {
		t.Errorf("inflight with one queued request: %d, want 1", got)
	}
	b.Start()
	wg.Wait()
	// The outcome has been delivered; the gauge must drain to zero.
	deadline := time.Now().Add(2 * time.Second)
	for b.Inflight() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("inflight stuck at %d after completion", b.Inflight())
		}
		time.Sleep(time.Millisecond)
	}
	if err := srv.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestServerBackpressure429 wires a server around a batcher whose
// RunFunc is gated shut, fills the admission queue, and checks the
// HTTP layer returns 429 with Retry-After.
func TestServerBackpressure429(t *testing.T) {
	const classes = 3
	net, images := testNetwork(t, classes)
	cfg := Config{MaxBatch: 1, MaxDelay: time.Hour, QueueSize: 1}.withDefaults()
	m := NewMetrics()
	b := NewBatcher(cfg, echoRun, m, net.Config.RoutingIterations)
	b.timer = neverTimer
	srv := newServer(net, cfg, b, m) // batcher deliberately not started
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if resp, _ := postClassify(t, ts.URL, images[0]); resp.StatusCode != http.StatusOK {
			t.Errorf("queued request finished %d, want 200", resp.StatusCode)
		}
	}()
	waitDepth(t, b, 1)
	resp, _ := postClassify(t, ts.URL, images[1])
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After header")
	}
	b.Start()
	wg.Wait()
	if err := srv.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestServerShutdownRejectsNewWork: after Close, classify returns 503.
func TestServerShutdown(t *testing.T) {
	const classes = 3
	net, images := testNetwork(t, classes)
	srv, err := New(net, capsnet.ExactMath{}, Config{MaxBatch: 2, MaxDelay: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if resp, _ := postClassify(t, ts.URL, images[0]); resp.StatusCode != http.StatusOK {
		t.Fatalf("pre-shutdown classify %d", resp.StatusCode)
	}
	if err := srv.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	if resp, _ := postClassify(t, ts.URL, images[0]); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("post-shutdown classify %d, want 503", resp.StatusCode)
	}
	if err := srv.Close(context.Background()); err != nil {
		t.Errorf("second close: %v", err)
	}
}
