package serve

import (
	"context"
	"math"
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"

	"pimcapsnet/internal/capsnet"
)

// bcfg is the brownout config used across the state-machine tests:
// engage at ≥ 20ms queue wait, recover at ≤ 2ms, one step per 100ms of
// sustained signal.
func bcfg(allowApprox bool) BrownoutConfig {
	return BrownoutConfig{
		Enabled:          true,
		EngageThreshold:  20 * time.Millisecond,
		RecoverThreshold: 2 * time.Millisecond,
		Hold:             100 * time.Millisecond,
		AllowApprox:      allowApprox,
	}.withDefaults()
}

// TestBrownoutStateMachine drives observe with explicit timestamps and
// checks the level after each observation — engagement needs Hold of
// sustained pressure, recovery mirrors it, and the hysteresis band
// resets both windows.
func TestBrownoutStateMachine(t *testing.T) {
	t0 := time.Unix(1_700_000_000, 0)
	at := func(ms int) time.Time { return t0.Add(time.Duration(ms) * time.Millisecond) }
	const (
		pressure = 30 * time.Millisecond // ≥ Engage
		calm     = 1 * time.Millisecond  // ≤ Recover
		band     = 10 * time.Millisecond // between the thresholds
	)
	steps := []struct {
		name  string
		wait  time.Duration
		nowMS int
		want  int
	}{
		{"first pressure opens the window", pressure, 0, 0},
		{"pressure before Hold elapses", pressure, 50, 0},
		{"Hold of pressure steps up", pressure, 100, 1},
		{"step resets the window", pressure, 150, 1},
		{"second Hold steps again", pressure, 250, 2},
		{"third Hold reaches max level", pressure, 400, 3},
		{"at max level pressure is absorbed", pressure, 550, 3},
		{"band resets the pressure window", band, 600, 3},
		{"calm opens the recovery window", calm, 650, 3},
		{"calm before Hold elapses", calm, 700, 3},
		{"Hold of calm steps down", calm, 750, 2},
		{"band also resets the calm window", band, 800, 2},
		{"calm restarts from scratch", calm, 810, 2},
		{"pre-band window does not carry over", calm, 870, 2},
		{"fresh Hold of calm steps down", calm, 910, 1},
		{"one more Hold fully recovers", calm, 1010, 0},
		{"at level 0 calm is absorbed", calm, 1150, 0},
	}
	// 3 configured iterations → 2 shedding levels, +1 approx level = max 3.
	b := newBrownout(bcfg(true), 3)
	if got := b.levels(); got != 4 {
		t.Fatalf("levels() = %d, want 4 (levels 0..3)", got)
	}
	for _, s := range steps {
		b.observe(s.wait, at(s.nowMS))
		if got := b.Level(); got != s.want {
			t.Fatalf("%s (t=%dms): level %d, want %d", s.name, s.nowMS, got, s.want)
		}
	}
}

// TestBrownoutIterationCapAndApprox checks the level→fidelity mapping:
// each shedding level removes one routing iteration, never below 1, and
// only the final level (with AllowApprox) flips the approximate-math
// path.
func TestBrownoutIterationCapAndApprox(t *testing.T) {
	b := newBrownout(bcfg(true), 3)
	cases := []struct {
		level      int
		wantIters  int
		wantApprox bool
	}{
		{0, 3, false},
		{1, 2, false},
		{2, 1, false},
		{3, 1, true}, // approx level: iterations stay floored at 1
	}
	for _, c := range cases {
		b.level.Store(int64(c.level))
		if got := b.iterationCap(); got != c.wantIters {
			t.Errorf("level %d: iterationCap %d, want %d", c.level, got, c.wantIters)
		}
		if got := b.approxActive(); got != c.wantApprox {
			t.Errorf("level %d: approxActive %v, want %v", c.level, got, c.wantApprox)
		}
	}

	// Without AllowApprox the ladder stops at iteration shedding.
	b = newBrownout(bcfg(false), 3)
	if got := b.levels(); got != 3 {
		t.Fatalf("no-approx levels() = %d, want 3", got)
	}
	b.level.Store(int64(b.maxLevel))
	if b.approxActive() {
		t.Fatal("approxActive true without AllowApprox")
	}
	if got := b.iterationCap(); got != 1 {
		t.Fatalf("max no-approx level: iterationCap %d, want 1", got)
	}

	// A single-iteration network has nothing to shed: only the approx
	// level exists, and the cap never goes below 1.
	b = newBrownout(bcfg(true), 1)
	if got := b.levels(); got != 2 {
		t.Fatalf("1-iteration levels() = %d, want 2", got)
	}
	b.level.Store(int64(b.maxLevel))
	if got := b.iterationCap(); got != 1 {
		t.Fatalf("1-iteration network: iterationCap %d, want 1", got)
	}
}

// TestBrownoutConfigValidate covers the validation boundaries.
func TestBrownoutConfigValidate(t *testing.T) {
	if err := (BrownoutConfig{}).validate(); err != nil {
		t.Fatalf("disabled zero config must validate, got %v", err)
	}
	if err := bcfg(false).validate(); err != nil {
		t.Fatalf("defaulted config must validate, got %v", err)
	}
	bad := bcfg(false)
	bad.RecoverThreshold = bad.EngageThreshold
	if err := bad.validate(); err == nil {
		t.Fatal("recover == engage must fail validation (no hysteresis band)")
	}
	bad = bcfg(false)
	bad.Hold = -time.Second
	if err := bad.validate(); err == nil {
		t.Fatal("negative Hold must fail validation")
	}
}

// TestBatchAbortWhenAllExpired exercises the cooperative-cancel path
// end to end at the batcher layer with injected timers: the abort
// timer fires while a rider is still live (re-arm, no cancel), then
// fires again after every rider expired (cancel armed, the run
// function observes it, the abort is counted).
func TestBatchAbortWhenAllExpired(t *testing.T) {
	cfg := Config{MaxBatch: 2, MaxDelay: time.Hour, QueueSize: 4}.withDefaults()
	m := NewMetrics()
	runEntered := make(chan struct{})
	var b *Batcher
	run := func(images [][]float32) []Prediction {
		close(runEntered)
		// Poll the cancel flag exactly like capsnet's routing loop does
		// between iterations.
		for !b.CancelRequested() {
			runtime.Gosched()
		}
		preds := make([]Prediction, len(images))
		for i := range preds {
			preds[i] = Prediction{Err: ErrBatchAborted}
		}
		return preds
	}
	b = NewBatcher(cfg, run, m, 3)
	b.timer = neverTimer
	abortTick := make(chan time.Time)
	armed := make(chan time.Duration, 4)
	b.abortTimer = func(d time.Duration) <-chan time.Time {
		armed <- d
		return abortTick
	}
	b.Start()
	defer b.Close(context.Background())

	// Two riders with deadlines far in the future (so armAbort arms a
	// timer) that the test expires by cancelation.
	ctx1, cancel1 := context.WithDeadline(context.Background(), time.Now().Add(time.Hour))
	defer cancel1()
	ctx2, cancel2 := context.WithDeadline(context.Background(), time.Now().Add(time.Hour))
	defer cancel2()
	errs := make(chan error, 2)
	go func() {
		_, _, err := b.Submit(ctx1, []float32{1})
		errs <- err
	}()
	go func() {
		_, _, err := b.Submit(ctx2, []float32{2})
		errs <- err
	}()

	<-runEntered // batch launched; run is blocked on the cancel flag
	<-armed      // abort timer armed at batch start

	// Premature firing: riders still live → no cancel, timer re-armed.
	abortTick <- time.Time{}
	<-armed
	if b.CancelRequested() {
		t.Fatal("cancel armed while riders were still live")
	}

	// Both riders give up; their Submit calls return context errors.
	cancel1()
	cancel2()
	<-errs
	<-errs

	// Now the abort fires for real.
	abortTick <- time.Time{}
	for i := 0; m.BatchesAborted() != 1; i++ {
		if i > 1e8 {
			t.Fatalf("batch abort not counted; cancel requested=%v", b.CancelRequested())
		}
		runtime.Gosched()
	}
}

// TestBrownoutIdleBitIdentical: a server with the brownout controller
// enabled but unpressured (level 0) serves outputs bit-identical to a
// direct forward pass — the controller only changes results while it
// is actively shedding. (The disabled-controller identity is covered
// by TestServeMatchesDirectForwardBitForBit, which runs with the
// always-installed cancel hook.)
func TestBrownoutIdleBitIdentical(t *testing.T) {
	net, images := testNetwork(t, 3)
	srv, err := New(net, capsnet.ExactMath{}, Config{
		MaxBatch: 4,
		MaxDelay: time.Millisecond,
		Brownout: BrownoutConfig{Enabled: true, AllowApprox: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	nc := net.Config.Classes
	for i, img := range images[:3] {
		out := net.ForwardBatch([][]float32{img}, capsnet.ExactMath{})
		want := append([]float32(nil), out.Lengths.Data()[:nc]...)
		out.Release()
		resp, cr := postClassify(t, ts.URL, img)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("image %d: status %d", i, resp.StatusCode)
		}
		for j, p := range cr.Probs {
			if math.Float32bits(p) != math.Float32bits(want[j]) {
				t.Fatalf("image %d class %d: idle-brownout served %x, direct %x",
					i, j, math.Float32bits(p), math.Float32bits(want[j]))
			}
		}
	}
	if lvl := srv.Metrics().BrownoutRequests(0); lvl == 0 {
		t.Fatal("level-0 request counter never incremented")
	}
}

// TestAbortTimerNotArmedWithoutDeadlines: a batch containing a rider
// with no context deadline can never fully expire on its own, so the
// abort timer must stay unarmed.
func TestAbortTimerNotArmedWithoutDeadlines(t *testing.T) {
	cfg := Config{MaxBatch: 1, MaxDelay: time.Hour, QueueSize: 4}.withDefaults()
	b := NewBatcher(cfg, echoRun, nil, 1)
	b.timer = neverTimer
	b.abortTimer = func(d time.Duration) <-chan time.Time {
		t.Error("abort timer armed for a batch with no deadlines")
		return nil
	}
	b.Start()
	defer b.Close(context.Background())
	if _, _, err := b.Submit(context.Background(), []float32{1}); err != nil {
		t.Fatal(err)
	}
}
