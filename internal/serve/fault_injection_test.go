package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"pimcapsnet/internal/capsnet"
	"pimcapsnet/internal/fault"
)

// campaignSeed is the single seed every injector in this file derives
// from; reproduce a failing campaign by re-running with the same seed.
const campaignSeed = 0x9e3779b9

// postRaw posts one classify request and returns the status code and
// raw response body, for asserting on error payloads.
func postRaw(t *testing.T, url string, img []float32) (int, string) {
	t.Helper()
	body, err := json.Marshal(ClassifyRequest{Image: img})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/classify", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(raw)
}

// mustServe asserts the server still answers a clean request with 200
// and finite probabilities — called after every injected fault to prove
// the fault was isolated rather than fatal.
func mustServe(t *testing.T, url string, img []float32) string {
	t.Helper()
	code, body := postRaw(t, url, img)
	if code != http.StatusOK {
		t.Fatalf("clean request after fault: status %d, body %s", code, body)
	}
	var cr ClassifyResponse
	if err := json.Unmarshal([]byte(body), &cr); err != nil {
		t.Fatal(err)
	}
	for i, p := range cr.Probs {
		if math.IsNaN(float64(p)) || math.IsInf(float64(p), 0) {
			t.Fatalf("prob %d is %v on the clean path", i, p)
		}
	}
	return body
}

func scrapeMetrics(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	return string(raw)
}

// TestCampaignWeightBitFlips injects seeded single-event upsets into
// the digit-layer weight tensor while the server runs. The contract is
// graceful degradation, not correctness under corruption: every
// response is either 200 with finite numbers or a typed 500 — never a
// crash, never NaN JSON — and restoring the weights restores
// bit-identical behavior.
func TestCampaignWeightBitFlips(t *testing.T) {
	net, images := testNetwork(t, 3)
	srv, err := New(net, capsnet.ExactMath{}, Config{MaxBatch: 1, MaxDelay: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	baseline := mustServe(t, ts.URL, images[0])

	weights := net.Digit.Weights.Data()
	pristine := append([]float32(nil), weights...)
	inj := fault.New(campaignSeed)
	// Sequential requests with MaxBatch=1 mean no forward pass is in
	// flight between a response and the next POST, so mutating the
	// weight tensor here is race-free.
	for round := 0; round < 4; round++ {
		inj.FlipBits(weights, 1<<round) // 1, 2, 4, 8 upsets
		code, body := postRaw(t, ts.URL, images[0])
		switch code {
		case http.StatusOK:
			var cr ClassifyResponse
			if err := json.Unmarshal([]byte(body), &cr); err != nil {
				t.Fatal(err)
			}
			for i, p := range cr.Probs {
				if math.IsNaN(float64(p)) || math.IsInf(float64(p), 0) {
					t.Fatalf("seed %#x round %d: prob %d is %v in a 200 response", campaignSeed, round, i, p)
				}
			}
		case http.StatusInternalServerError:
			if !strings.Contains(body, "non-finite") {
				t.Fatalf("seed %#x round %d: 500 without the typed non-finite error: %s", campaignSeed, round, body)
			}
		default:
			t.Fatalf("seed %#x round %d: status %d, body %s", campaignSeed, round, code, body)
		}
	}

	copy(weights, pristine)
	if got := mustServe(t, ts.URL, images[0]); got != baseline {
		t.Fatalf("restored weights do not reproduce the baseline response\nbaseline: %s\ngot:      %s", baseline, got)
	}
}

// gatedNaNExp is an approximate-math stand-in whose Exp saturates to
// NaN while the gate is armed — the worst case the PE bit-trick path
// degrades to at its domain edges. It is not capsnet.ExactMath, so the
// finite-value guard re-routes affected samples with exact math.
type gatedNaNExp struct {
	capsnet.ExactMath
	g *fault.Gate
}

func (m gatedNaNExp) Exp(x float32) float32 {
	if m.g.Fire() {
		return float32(math.NaN())
	}
	return m.ExactMath.Exp(x)
}

// TestCampaignApproxMathNaNFallsBackToExact arms the NaN exponential
// for one request: the client still gets 200 with finite
// probabilities because the routing guard re-runs the sample with
// exact math, and the fallback shows up in /metrics.
func TestCampaignApproxMathNaNFallsBackToExact(t *testing.T) {
	net, images := testNetwork(t, 3)
	var gate fault.Gate
	srv, err := New(net, gatedNaNExp{g: &gate}, Config{MaxBatch: 1, MaxDelay: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	baseline := mustServe(t, ts.URL, images[0])

	gate.Arm(1 << 20) // poison every Exp of the next forward pass
	body := mustServe(t, ts.URL, images[0])
	gate.Disarm()
	if body != baseline {
		t.Fatalf("exact-math fallback is not bit-identical to the exact baseline\nbaseline: %s\ngot:      %s", baseline, body)
	}
	if got := srv.Metrics().RoutingFallbacks(); got != 1 {
		t.Fatalf("routing fallbacks %d, want 1", got)
	}
	if m := scrapeMetrics(t, ts.URL); !strings.Contains(m, "capsnet_routing_exact_fallbacks_total 1") {
		t.Fatalf("/metrics missing fallback counter:\n%s", m)
	}

	if got := mustServe(t, ts.URL, images[0]); got != baseline {
		t.Fatal("disarmed gate does not restore baseline behavior")
	}
	if got := srv.Metrics().RoutingFallbacks(); got != 1 {
		t.Fatalf("fallback counter moved to %d on the clean path", got)
	}
}

// TestCampaignRoutingInputCorruption poisons the routing inputs
// themselves (post-convolution activations), which exact math cannot
// recover: the request must fail alone with the typed 500, and the
// next request must succeed.
func TestCampaignRoutingInputCorruption(t *testing.T) {
	net, images := testNetwork(t, 3)
	inj := fault.New(campaignSeed)
	var gate fault.Gate
	net.RoutingInputHook = fault.CorruptSliceHook(inj, &gate, 8)
	srv, err := New(net, capsnet.ExactMath{}, Config{MaxBatch: 1, MaxDelay: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	mustServe(t, ts.URL, images[0]) // gate disarmed: hook is free

	gate.Arm(1)
	code, body := postRaw(t, ts.URL, images[0])
	if code != http.StatusInternalServerError || !strings.Contains(body, "non-finite") {
		t.Fatalf("corrupted routing inputs: status %d, body %s", code, body)
	}
	mustServe(t, ts.URL, images[1])
}

// TestCampaignBatchCorruption injects NaN/Inf into the assembled batch
// images via the pre-run hook — corruption upstream of the whole
// forward pass. The poisoned request fails with a typed 500; the
// server keeps serving.
func TestCampaignBatchCorruption(t *testing.T) {
	net, images := testNetwork(t, 3)
	inj := fault.New(campaignSeed + 1)
	var gate fault.Gate
	srv, err := New(net, capsnet.ExactMath{}, Config{
		MaxBatch: 1,
		MaxDelay: time.Millisecond,
		PreRunHook: fault.ChainBatchHooks(
			nil, // chain must skip nil entries
			fault.CorruptBatchHook(inj, &gate, 16),
		),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	mustServe(t, ts.URL, images[0])

	gate.Arm(1)
	code, body := postRaw(t, ts.URL, images[0])
	if code != http.StatusInternalServerError || !strings.Contains(body, "non-finite") {
		t.Fatalf("corrupted batch: status %d, body %s", code, body)
	}
	mustServe(t, ts.URL, images[1])
}

// TestCampaignInjectedPanic forces a panic on the inference goroutine.
// The batch is isolated — its request gets the typed 500, the
// recovered-panic counter moves, and the very next request succeeds on
// the same runner.
func TestCampaignInjectedPanic(t *testing.T) {
	net, images := testNetwork(t, 3)
	var gate fault.Gate
	srv, err := New(net, capsnet.ExactMath{}, Config{
		MaxBatch:   1,
		MaxDelay:   time.Millisecond,
		PreRunHook: fault.PanicBatchHook(&gate),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	mustServe(t, ts.URL, images[0])

	gate.Arm(2) // two consecutive panicking batches, both isolated
	for i := 0; i < 2; i++ {
		code, body := postRaw(t, ts.URL, images[0])
		if code != http.StatusInternalServerError || !strings.Contains(body, "recovered") {
			t.Fatalf("injected panic %d: status %d, body %s", i, code, body)
		}
	}
	if got := srv.Metrics().PanicsRecovered(); got != 2 {
		t.Fatalf("recovered panics %d, want 2", got)
	}
	mustServe(t, ts.URL, images[1])
	if m := scrapeMetrics(t, ts.URL); !strings.Contains(m, "capsnet_panics_recovered_total 2") {
		t.Fatalf("/metrics missing panic counter:\n%s", m)
	}
}

// TestCampaignWatchdogStall stalls one batch past the configured
// deadline. The watchdog fails it with the typed 500 and the queue
// keeps draining behind the abandoned inference goroutine.
func TestCampaignWatchdogStall(t *testing.T) {
	net, images := testNetwork(t, 3)
	var gate fault.Gate
	srv, err := New(net, capsnet.ExactMath{}, Config{
		MaxBatch:      1,
		MaxDelay:      time.Millisecond,
		BatchDeadline: 50 * time.Millisecond,
		PreRunHook:    fault.StallBatchHook(&gate, 2*time.Second),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	mustServe(t, ts.URL, images[0])

	gate.Arm(1)
	start := time.Now()
	code, body := postRaw(t, ts.URL, images[0])
	if code != http.StatusInternalServerError || !strings.Contains(body, "deadline") {
		t.Fatalf("stalled batch: status %d, body %s", code, body)
	}
	if elapsed := time.Since(start); elapsed >= 2*time.Second {
		t.Fatalf("watchdog did not bound the stall: request took %v", elapsed)
	}
	if got := srv.Metrics().WatchdogBatches(); got != 1 {
		t.Fatalf("watchdog batches %d, want 1", got)
	}
	// The abandoned goroutine is still sleeping; the server must serve
	// new traffic meanwhile.
	mustServe(t, ts.URL, images[1])
	if m := scrapeMetrics(t, ts.URL); !strings.Contains(m, "capsnet_watchdog_failed_batches_total 1") {
		t.Fatalf("/metrics missing watchdog counter:\n%s", m)
	}
}

// TestCampaignCheckpointCorruption flips one bit in an on-disk
// checkpoint: LoadCheckpoint must reject it with the typed error and
// count the rejection, while the intact file loads cleanly.
func TestCampaignCheckpointCorruption(t *testing.T) {
	net, _ := testNetwork(t, 3)
	dir := t.TempDir()
	path := filepath.Join(dir, "model.ckpt")
	if err := net.SaveFile(path); err != nil {
		t.Fatal(err)
	}

	m := NewMetrics()
	if _, err := LoadCheckpoint(path, m); err != nil {
		t.Fatalf("intact checkpoint rejected: %v", err)
	}
	if got := m.CheckpointRejections(); got != 0 {
		t.Fatalf("rejection counter %d after a clean load", got)
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x04
	corrupt := filepath.Join(dir, "corrupt.ckpt")
	if err := os.WriteFile(corrupt, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = LoadCheckpoint(corrupt, m)
	if !errors.Is(err, capsnet.ErrCorruptCheckpoint) {
		t.Fatalf("corrupt checkpoint: %v, want ErrCorruptCheckpoint", err)
	}
	if got := m.CheckpointRejections(); got != 1 {
		t.Fatalf("rejection counter %d, want 1", got)
	}
}

// TestCampaignDisabledInjectorsAreInvisible is the acceptance check
// for the off state: with every hook nil and every gate disarmed, two
// servers — one wired exactly like the campaign, one plain — produce
// byte-identical responses.
func TestCampaignDisabledInjectorsAreInvisible(t *testing.T) {
	net, images := testNetwork(t, 3)
	inj := fault.New(campaignSeed)
	var gate fault.Gate // never armed

	plain, err := New(net, capsnet.ExactMath{}, Config{MaxBatch: 1, MaxDelay: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close(context.Background())
	tsPlain := httptest.NewServer(plain.Handler())
	defer tsPlain.Close()
	want := make([]string, len(images))
	for i, img := range images {
		want[i] = mustServe(t, tsPlain.URL, img)
	}

	net.RoutingInputHook = fault.CorruptSliceHook(inj, &gate, 8)
	defer func() { net.RoutingInputHook = nil }()
	wired, err := New(net, capsnet.ExactMath{}, Config{
		MaxBatch:   1,
		MaxDelay:   time.Millisecond,
		PreRunHook: fault.ChainBatchHooks(fault.PanicBatchHook(&gate), fault.CorruptBatchHook(inj, &gate, 8)),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer wired.Close(context.Background())
	tsWired := httptest.NewServer(wired.Handler())
	defer tsWired.Close()

	for i, img := range images {
		if got := mustServe(t, tsWired.URL, img); got != want[i] {
			t.Fatalf("image %d: disarmed injectors changed the response\nplain: %s\nwired: %s", i, want[i], got)
		}
	}
	m := wired.Metrics()
	if m.PanicsRecovered()+m.WatchdogBatches()+m.RoutingFallbacks() != 0 {
		t.Fatal("robustness counters moved with every injector disarmed")
	}
}
