//pimcaps:bitexact

package serve

import (
	"bufio"
	"context"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"pimcapsnet/internal/capsnet"
)

// TestArenaAndPartitionMetrics checks the serving stack surfaces the
// allocation-free forward path: after classifications, /metrics
// reports a non-zero capsnet_arena_bytes gauge (the network holds its
// pooled scratch arenas) and capsnet_routing_partition_total counters
// that account for every routing run.
func TestArenaAndPartitionMetrics(t *testing.T) {
	network, images := testNetwork(t, 3)
	srv, err := New(network, capsnet.ExactMath{}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close(context.Background())

	const n = 4
	for i := 0; i < n; i++ {
		resp, _ := postClassify(t, ts.URL, images[i%len(images)])
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d", i, resp.StatusCode)
		}
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	values := map[string]float64{}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		for _, name := range []string{
			"capsnet_arena_bytes",
			`capsnet_routing_partition_total{dim="batch"}`,
			`capsnet_routing_partition_total{dim="hcaps"}`,
		} {
			if strings.HasPrefix(line, name+" ") {
				v, err := strconv.ParseFloat(strings.TrimPrefix(line, name+" "), 64)
				if err != nil {
					t.Fatalf("unparseable %s line %q: %v", name, line, err)
				}
				values[name] = v
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if v, ok := values["capsnet_arena_bytes"]; !ok || v <= 0 {
		t.Errorf("capsnet_arena_bytes = %v, want > 0 (pooled scratch arenas live)", v)
	}
	runs := values[`capsnet_routing_partition_total{dim="batch"}`] +
		values[`capsnet_routing_partition_total{dim="hcaps"}`]
	if runs == 0 {
		t.Error("capsnet_routing_partition_total counters account for no routing runs")
	}
	// Every routing run was sharded exactly one way, so the counters
	// must sum to the forward-pass count, which is the batch count.
	if batches := float64(srv.Metrics().Batches()); runs != batches {
		t.Errorf("partition counters sum to %v runs, want %v (batches launched)", runs, batches)
	}

	// The routing_partition marker stage must be visible in the stage
	// histograms like every other forward stage.
	if srv.Metrics().StageHistogram(capsnet.StageRoutingPartition).Count() == 0 {
		t.Error("routing_partition marker stage has no observations")
	}
}
