package serve

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// BrownoutConfig tunes the adaptive-fidelity overload controller. The
// zero value disables brownout entirely (the server behaves exactly as
// it did without the controller); set Enabled to opt in.
type BrownoutConfig struct {
	// Enabled turns the controller on. Off, the server installs no
	// capsnet hooks and the forward path is bit-identical to the
	// pre-brownout server.
	Enabled bool
	// EngageThreshold is the per-batch queue wait at or above which the
	// controller reads overload pressure. Default 25ms.
	EngageThreshold time.Duration
	// RecoverThreshold is the queue wait at or below which the
	// controller reads calm; waits between the two thresholds hold the
	// current level (the hysteresis band, so the level does not flap
	// around one boundary). Default 2ms.
	RecoverThreshold time.Duration
	// Hold is how long pressure (or calm) must persist before the
	// controller steps one level up (or down) — and how long between
	// consecutive steps under sustained signal. Default 250ms.
	Hold time.Duration
	// AllowApprox adds one final level beyond the iteration-shedding
	// levels that switches routing numerics to the fp32 approximate PE
	// path. Safe to enable because capsnet's finite-value guard re-runs
	// any sample the approximations drive non-finite with exact math
	// (and fails it individually if even that does not recover). Off by
	// default: iteration shedding alone is loss-bounded per the paper's
	// routing-convergence characterization.
	AllowApprox bool
}

func (c BrownoutConfig) withDefaults() BrownoutConfig {
	if c.EngageThreshold == 0 {
		c.EngageThreshold = 25 * time.Millisecond
	}
	if c.RecoverThreshold == 0 {
		c.RecoverThreshold = 2 * time.Millisecond
	}
	if c.Hold == 0 {
		c.Hold = 250 * time.Millisecond
	}
	return c
}

func (c BrownoutConfig) validate() error {
	if !c.Enabled {
		return nil
	}
	if c.EngageThreshold <= 0 || c.RecoverThreshold < 0 {
		return fmt.Errorf("serve: brownout thresholds engage=%v recover=%v, need engage > 0 and recover ≥ 0", c.EngageThreshold, c.RecoverThreshold)
	}
	if c.RecoverThreshold >= c.EngageThreshold {
		return fmt.Errorf("serve: brownout RecoverThreshold %v must be below EngageThreshold %v (the gap is the hysteresis band)", c.RecoverThreshold, c.EngageThreshold)
	}
	if c.Hold < 0 {
		return fmt.Errorf("serve: negative brownout Hold %v", c.Hold)
	}
	return nil
}

// brownout is the hysteresis state machine that trades routing
// fidelity for latency under sustained queue pressure. Levels:
//
//	0                     full fidelity (configured iterations, configured math)
//	1 … iterations-1      shed one routing iteration per level (never below 1)
//	iterations-1 + 1      (only with AllowApprox) iterations floored at 1 AND
//	                      the fp32 approximate-math routing path
//
// The controller is driven by the batcher: observe is called once per
// launched batch with that batch's worst queue wait. Pressure at or
// above EngageThreshold sustained for Hold steps the level up; calm at
// or below RecoverThreshold sustained for Hold steps it down; waits in
// between reset both windows, holding the current level. Level reads
// (Level, iterationCap, approxActive) are lock-free atomics because
// the inference goroutine consults them mid-batch.
type brownout struct {
	cfg BrownoutConfig
	// iters is the network's configured routing iteration count;
	// iterLevels = iters-1 shedding levels, maxLevel adds the approx
	// level when allowed.
	iters      int
	iterLevels int
	maxLevel   int

	level atomic.Int64

	mu sync.Mutex
	//pimcaps:guardedby mu
	pressureSince time.Time
	//pimcaps:guardedby mu
	calmSince time.Time
}

// newBrownout builds the controller for a network with the given
// configured routing iteration count. cfg must be enabled and
// validated.
func newBrownout(cfg BrownoutConfig, routingIterations int) *brownout {
	b := &brownout{cfg: cfg, iters: routingIterations}
	b.iterLevels = routingIterations - 1 // shedding below 1 iteration is never allowed
	if b.iterLevels < 0 {
		b.iterLevels = 0
	}
	b.maxLevel = b.iterLevels
	if cfg.AllowApprox {
		b.maxLevel++
	}
	return b
}

// Level returns the current brownout level (0 = full fidelity).
func (b *brownout) Level() int { return int(b.level.Load()) }

// levels returns how many distinct levels exist (maxLevel+1), sizing
// the per-level request counters.
func (b *brownout) levels() int { return b.maxLevel + 1 }

// iterationCap is installed as the network's IterationLimit hook: the
// per-run routing iteration count at the current level, never below 1.
func (b *brownout) iterationCap() int {
	shed := int(b.level.Load())
	if shed > b.iterLevels {
		shed = b.iterLevels
	}
	it := b.iters - shed
	if it < 1 {
		it = 1
	}
	return it
}

// approxActive reports whether the current level enables the
// approximate-math routing path.
func (b *brownout) approxActive() bool {
	return b.cfg.AllowApprox && int(b.level.Load()) > b.iterLevels
}

// observe feeds one launched batch's worst queue wait into the state
// machine. now is the batch launch stamp (the batcher's clock), so
// tests drive the machine with an injected clock.
func (b *brownout) observe(queueWait time.Duration, now time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	lvl := int(b.level.Load())
	switch {
	case queueWait >= b.cfg.EngageThreshold:
		b.calmSince = time.Time{}
		if b.pressureSince.IsZero() {
			b.pressureSince = now
		}
		if lvl < b.maxLevel && now.Sub(b.pressureSince) >= b.cfg.Hold {
			b.level.Store(int64(lvl + 1))
			b.pressureSince = now // a further step needs a fresh Hold of pressure
		}
	case queueWait <= b.cfg.RecoverThreshold:
		b.pressureSince = time.Time{}
		if b.calmSince.IsZero() {
			b.calmSince = now
		}
		if lvl > 0 && now.Sub(b.calmSince) >= b.cfg.Hold {
			b.level.Store(int64(lvl - 1))
			b.calmSince = now
		}
	default:
		// Hysteresis band: neither pressure nor calm. Both windows
		// reset so a step needs a fresh sustained signal.
		b.pressureSince, b.calmSince = time.Time{}, time.Time{}
	}
}
