package serve

import (
	"math"
	"regexp"
	"strings"
	"sync"
	"testing"

	"pimcapsnet/internal/obs"
)

// TestHistogramObserveZero pins the sum fix: a zero observation must
// count AND contribute zero to the sum (the old guard silently dropped
// non-positive values from sumMicro, skewing _sum/_count means).
func TestHistogramObserveZero(t *testing.T) {
	h := obs.NewHistogram(1, 2)
	h.Observe(0)
	h.Observe(2)
	if h.Count() != 2 {
		t.Fatalf("count %d, want 2", h.Count())
	}
	if got := h.Sum(); got != 2 {
		t.Fatalf("sum %g, want 2 (zero observation contributes zero, not nothing)", got)
	}
}

// TestHistogramObserveNegativeClamps checks negatives (always an
// upstream bug for durations) clamp to zero instead of wrapping the
// uint64 sum.
func TestHistogramObserveNegativeClamps(t *testing.T) {
	h := obs.NewHistogram(1)
	h.Observe(-5)
	if h.Count() != 1 {
		t.Fatalf("count %d, want 1", h.Count())
	}
	if got := h.Sum(); got != 0 {
		t.Fatalf("sum %g, want 0 after clamping", got)
	}
	if got := h.BucketCounts()[0]; got != 1 {
		t.Fatalf("clamped value landed in buckets %v, want first", h.BucketCounts())
	}
}

// TestHistogramAllOverflow pins the +Inf-bucket quantile contract:
// when every observation exceeds the largest finite bound, quantiles
// report that bound (not a fabricated interpolation) and the overflow
// counter exposes the clipping.
func TestHistogramAllOverflow(t *testing.T) {
	h := obs.NewHistogram(1, 2)
	for i := 0; i < 10; i++ {
		h.Observe(50)
	}
	for _, q := range []float64{0.01, 0.5, 0.99} {
		if got := h.Quantile(q); got != 2 {
			t.Errorf("q%g = %g, want clipped to 2", q, got)
		}
	}
	if got := h.Overflow(); got != 10 {
		t.Errorf("Overflow() = %d, want 10", got)
	}
	if got := h.Sum(); got != 500 {
		t.Errorf("sum %g, want 500", got)
	}
}

// TestHistogramExactBound checks an observation equal to a bucket's
// upper bound lands in that bucket (le is inclusive, per Prometheus
// semantics).
func TestHistogramExactBound(t *testing.T) {
	h := obs.NewHistogram(1, 2, 4)
	h.Observe(2)
	if got := h.BucketCounts()[1]; got != 1 {
		t.Fatalf("Observe(2) landed in counts %v, want bucket le=2", h.BucketCounts())
	}
	if got := h.Overflow(); got != 0 {
		t.Fatalf("exact-bound observation counted as overflow")
	}
	h.Observe(4) // largest finite bound: still not overflow
	if got := h.Overflow(); got != 0 {
		t.Fatalf("largest-bound observation counted as overflow")
	}
}

// TestHistogramConcurrent hammers one histogram from many goroutines;
// meaningful under -race (the CI race job) and double-checks totals.
func TestHistogramConcurrent(t *testing.T) {
	h := obs.NewHistogram(0.001, 0.01, 0.1, 1)
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(w%4) * 0.01)
				_ = h.Quantile(0.5)
				_ = h.Sum()
			}
		}(w)
	}
	wg.Wait()
	if got := h.Count(); got != workers*per {
		t.Fatalf("count %d, want %d", got, workers*per)
	}
	wantSum := float64(per) * (0 + 0.01 + 0.02 + 0.03) * float64(workers) / 4
	if got := h.Sum(); math.Abs(got-wantSum) > 1e-6*wantSum+1e-9 {
		t.Fatalf("sum %g, want %g", got, wantSum)
	}
}

// TestHistogramGoldenExposition is the golden test for the text
// exposition: exact output, unlabeled and labeled, including the
// quantile, bucket, sum, count, and overflow lines.
func TestHistogramGoldenExposition(t *testing.T) {
	h := obs.NewHistogram(0.5, 1)
	h.Observe(0.25)
	h.Observe(0.25)
	h.Observe(0.75)
	h.Observe(3) // overflow

	var sb strings.Builder
	h.WriteText(&sb, "x_seconds", "")
	want := `x_seconds{quantile="0.5"} 0.5
x_seconds{quantile="0.95"} 1
x_seconds{quantile="0.99"} 1
x_seconds_bucket{le="0.5"} 2
x_seconds_bucket{le="1"} 3
x_seconds_bucket{le="+Inf"} 4
x_seconds_sum 4.25
x_seconds_count 4
x_seconds_overflow_total 1
`
	if sb.String() != want {
		t.Errorf("unlabeled exposition:\ngot:\n%swant:\n%s", sb.String(), want)
	}

	sb.Reset()
	h.WriteText(&sb, "x_seconds", `stage="conv"`)
	want = `x_seconds{stage="conv",quantile="0.5"} 0.5
x_seconds{stage="conv",quantile="0.95"} 1
x_seconds{stage="conv",quantile="0.99"} 1
x_seconds_bucket{stage="conv",le="0.5"} 2
x_seconds_bucket{stage="conv",le="1"} 3
x_seconds_bucket{stage="conv",le="+Inf"} 4
x_seconds_sum{stage="conv"} 4.25
x_seconds_count{stage="conv"} 4
x_seconds_overflow_total{stage="conv"} 1
`
	if sb.String() != want {
		t.Errorf("labeled exposition:\ngot:\n%swant:\n%s", sb.String(), want)
	}
}

// promLine matches one Prometheus text-format sample line: a metric
// name, an optional label set, and a float value.
var promLine = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"\\]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"\\]*")*\})? ` +
		`(-?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?|\+Inf|-Inf|NaN)$`)

// TestMetricsExpositionGrammar validates every line the full /metrics
// endpoint emits — including runtime gauges and labeled stage
// histograms — against the Prometheus text grammar.
func TestMetricsExpositionGrammar(t *testing.T) {
	m := NewMetrics()
	m.IncRequest()
	m.IncResponse(200)
	m.ObserveBatch(4, 3)
	m.Latency.Observe(0.003)
	m.QueueWait.Observe(0.0001)
	m.RoutingIteration.Observe(0.0005)
	m.ObserveStage(StageAdmission, 0.0002)
	m.ObserveStage("conv", 0.001)

	var sb strings.Builder
	m.WriteText(&sb)
	text := sb.String()
	for i, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if !promLine.MatchString(line) {
			t.Errorf("line %d not valid Prometheus text format: %q", i+1, line)
		}
	}
	for _, want := range []string{
		`capsnet_queue_wait_seconds_count 1`,
		`capsnet_routing_iteration_seconds_count 1`,
		`capsnet_stage_seconds_count{stage="admission"} 1`,
		`capsnet_stage_seconds_count{stage="conv"} 1`,
		`capsnet_go_goroutines `,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
	// Stage families must come out sorted by label for scrape
	// stability.
	if strings.Index(text, `stage="admission"`) > strings.Index(text, `stage="conv"`) {
		t.Error("stage histograms not sorted by stage label")
	}
}
