package serve

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"
)

// echoRun returns a Prediction whose Class echoes the first pixel, so
// tests can verify request↔result pairing inside a batch.
func echoRun(images [][]float32) []Prediction {
	preds := make([]Prediction, len(images))
	for i, img := range images {
		preds[i] = Prediction{Class: int(img[0]), Probs: []float32{img[0]}}
	}
	return preds
}

// neverTimer is an injected batch-fill timer that never fires (a nil
// channel blocks forever), proving a code path needs no timer.
func neverTimer(time.Duration) <-chan time.Time { return nil }

// waitDepth spins (no sleeps) until the admission queue holds want
// requests; Submit pushes synchronously before blocking, so this
// settles deterministically.
func waitDepth(t *testing.T, b *Batcher, want int) {
	t.Helper()
	for i := 0; b.QueueDepth() < want; i++ {
		if i > 1e8 {
			t.Fatalf("queue depth stuck at %d, want %d", b.QueueDepth(), want)
		}
		runtime.Gosched()
	}
}

// TestFullBatchFiresImmediately: MaxBatch requests launch without the
// MaxDelay timer ever firing.
func TestFullBatchFiresImmediately(t *testing.T) {
	cfg := Config{MaxBatch: 4, MaxDelay: time.Hour, QueueSize: 16}.withDefaults()
	b := NewBatcher(cfg, echoRun, nil, 1)
	b.timer = neverTimer
	b.Start()
	defer b.Close(context.Background())

	var wg sync.WaitGroup
	results := make([]outcome, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			pred, batch, err := b.Submit(context.Background(), []float32{float32(i)})
			results[i] = outcome{pred: pred, batch: batch, err: err}
		}(i)
	}
	wg.Wait()
	for i, res := range results {
		if res.err != nil {
			t.Fatalf("request %d: %v", i, res.err)
		}
		if res.pred.Class != i {
			t.Errorf("request %d routed to result %d", i, res.pred.Class)
		}
		if res.batch != 4 {
			t.Errorf("request %d rode batch of %d, want 4", i, res.batch)
		}
	}
}

// TestLoneRequestFiresAfterMaxDelay: a partial batch launches when the
// (injected) fill timer fires, with no real sleeping.
func TestLoneRequestFiresAfterMaxDelay(t *testing.T) {
	cfg := Config{MaxBatch: 8, MaxDelay: time.Hour, QueueSize: 16}.withDefaults()
	b := NewBatcher(cfg, echoRun, nil, 1)
	tick := make(chan time.Time)
	timerArmed := make(chan time.Duration, 1)
	b.timer = func(d time.Duration) <-chan time.Time {
		timerArmed <- d
		return tick
	}
	b.Start()
	defer b.Close(context.Background())

	done := make(chan outcome, 1)
	go func() {
		pred, batch, err := b.Submit(context.Background(), []float32{7})
		done <- outcome{pred: pred, batch: batch, err: err}
	}()

	// The dispatcher arms the fill timer only after collecting the
	// first request of the batch.
	if d := <-timerArmed; d != time.Hour {
		t.Fatalf("timer armed with %v, want MaxDelay", d)
	}
	select {
	case res := <-done:
		t.Fatalf("batch launched before the fill timer fired: %+v", res)
	default:
	}
	tick <- time.Time{}
	res := <-done
	if res.err != nil {
		t.Fatal(res.err)
	}
	if res.pred.Class != 7 || res.batch != 1 {
		t.Fatalf("got class %d batch %d, want class 7 batch 1", res.pred.Class, res.batch)
	}
}

// TestQueueOverflowRejects: with the dispatcher not yet running, the
// QueueSize+1-th submit is rejected with ErrQueueFull (the server maps
// it to 429); starting the batcher then completes the queued ones.
func TestQueueOverflowRejects(t *testing.T) {
	cfg := Config{MaxBatch: 2, MaxDelay: time.Hour, QueueSize: 2}.withDefaults()
	b := NewBatcher(cfg, echoRun, nil, 1)
	b.timer = neverTimer

	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, errs[i] = b.Submit(context.Background(), []float32{float32(i)})
		}(i)
	}
	waitDepth(t, b, 2)
	if _, _, err := b.Submit(context.Background(), []float32{9}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow submit returned %v, want ErrQueueFull", err)
	}
	b.Start()
	defer b.Close(context.Background())
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("queued request %d failed: %v", i, err)
		}
	}
}

// TestCloseDrainsInFlight: requests admitted before shutdown complete
// with real results, and submits after shutdown are rejected.
func TestCloseDrainsInFlight(t *testing.T) {
	cfg := Config{MaxBatch: 8, MaxDelay: time.Hour, QueueSize: 16}.withDefaults()
	b := NewBatcher(cfg, echoRun, nil, 1)
	b.timer = neverTimer // only shutdown can launch the batch

	var wg sync.WaitGroup
	results := make([]outcome, 3)
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			pred, batch, err := b.Submit(context.Background(), []float32{float32(i)})
			results[i] = outcome{pred: pred, batch: batch, err: err}
		}(i)
	}
	// Nothing consumes before Start, so all three are deterministically
	// admitted once the depth reaches 3.
	waitDepth(t, b, 3)
	b.Start()
	if err := b.Close(context.Background()); err != nil {
		t.Fatalf("close: %v", err)
	}
	wg.Wait()
	for i, res := range results {
		if res.err != nil {
			t.Fatalf("in-flight request %d dropped at shutdown: %v", i, res.err)
		}
		if res.pred.Class != i {
			t.Errorf("request %d routed to result %d", i, res.pred.Class)
		}
	}
	if _, _, err := b.Submit(context.Background(), []float32{0}); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-shutdown submit returned %v, want ErrClosed", err)
	}
}

// TestExpiredRequestSkipped: a request whose context dies while queued
// is dropped by the runner without reaching RunFunc.
func TestExpiredRequestSkipped(t *testing.T) {
	cfg := Config{MaxBatch: 1, MaxDelay: time.Hour, QueueSize: 4}.withDefaults()
	ran := 0
	b := NewBatcher(cfg, func(images [][]float32) []Prediction {
		ran += len(images)
		return echoRun(images)
	}, nil, 1)
	b.timer = neverTimer

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // expired before the batch can run
	errCh := make(chan error, 1)
	go func() {
		_, _, err := b.Submit(ctx, []float32{1})
		errCh <- err
	}()
	if err := <-errCh; !errors.Is(err, context.Canceled) {
		t.Fatalf("expired submit returned %v, want context.Canceled", err)
	}
	b.Start()
	if err := b.Close(context.Background()); err != nil {
		t.Fatalf("close: %v", err)
	}
	if ran != 0 {
		t.Fatalf("RunFunc saw %d expired requests, want 0", ran)
	}
}
