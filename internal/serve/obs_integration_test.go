package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"

	"pimcapsnet/internal/capsnet"
	"pimcapsnet/internal/trace"
)

var traceIDRe = regexp.MustCompile(`^[0-9a-f]{16}$`)

// TestObservabilityEndToEnd drives the fully wired server (sampling
// every request, JSON logging) and checks the whole observability
// surface in one pass: trace IDs on headers and log lines, per-stage
// histograms whose pipeline stages account for end-to-end latency, and
// a /debug/requests/trace export that round-trips through
// internal/trace with the right span set.
func TestObservabilityEndToEnd(t *testing.T) {
	network, images := testNetwork(t, 3)
	var logBuf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&syncWriter{w: &logBuf}, nil))
	srv, err := New(network, capsnet.ExactMath{}, Config{
		TraceSample: 1,
		TraceBuffer: 32,
		Logger:      logger,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close(context.Background())

	const n = 6
	ids := make(map[string]bool)
	for i := 0; i < n; i++ {
		resp, _ := postClassify(t, ts.URL, images[i%len(images)])
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d", i, resp.StatusCode)
		}
		id := resp.Header.Get("X-Trace-Id")
		if !traceIDRe.MatchString(id) {
			t.Fatalf("X-Trace-Id %q not a 16-hex trace ID", id)
		}
		if ids[id] {
			t.Fatalf("duplicate trace ID %q", id)
		}
		ids[id] = true
	}

	// A caller-supplied trace ID must be honored end to end.
	body, _ := json.Marshal(ClassifyRequest{Image: images[0]})
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/classify", bytes.NewReader(body))
	req.Header.Set("X-Trace-Id", "feedfacecafebeef")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get("X-Trace-Id"); got != "feedfacecafebeef" {
		t.Fatalf("caller trace ID not honored: %q", got)
	}

	// Metrics: every pipeline stage and the forward-pass stages must
	// have observations, and the pipeline stage sums must approximately
	// account for the end-to-end latency sum (they partition each
	// request's time inside the server; only handler-internal
	// bookkeeping between stamps is unaccounted).
	m := srv.Metrics()
	for _, stage := range []string{
		StageAdmission, StageQueueWait, StageBatchAssembly, StageForward, StageEncode,
		capsnet.StageConv, capsnet.StagePrimaryCaps, capsnet.StagePredictionVectors,
		capsnet.StageRoutingIteration, capsnet.StageRoutingSoftmax,
		capsnet.StageRoutingAggregate, capsnet.StageLengths,
	} {
		if got := m.StageHistogram(stage).Count(); got == 0 {
			t.Errorf("stage %q has no observations", stage)
		}
	}
	if m.QueueWait.Count() == 0 || m.RoutingIteration.Count() == 0 {
		t.Error("dedicated queue-wait / routing-iteration histograms empty")
	}
	var pipelineSum float64
	for _, stage := range []string{StageAdmission, StageQueueWait, StageBatchAssembly, StageForward, StageEncode} {
		pipelineSum += m.StageHistogram(stage).Sum()
	}
	latencySum := m.Latency.Sum()
	if pipelineSum > latencySum*1.05+0.001 {
		t.Errorf("pipeline stage sum %.6fs exceeds latency sum %.6fs", pipelineSum, latencySum)
	}
	if pipelineSum < latencySum*0.5-0.001 {
		t.Errorf("pipeline stage sum %.6fs accounts for under half the latency sum %.6fs", pipelineSum, latencySum)
	}

	// Trace export: Perfetto-format JSON that internal/trace reads
	// back, containing forward-pass spans tagged with known IDs.
	traceResp, err := http.Get(ts.URL + "/debug/requests/trace?last=10")
	if err != nil {
		t.Fatal(err)
	}
	defer traceResp.Body.Close()
	if traceResp.StatusCode != http.StatusOK {
		t.Fatalf("trace endpoint status %d", traceResp.StatusCode)
	}
	log, err := trace.ReadJSON(traceResp.Body)
	if err != nil {
		t.Fatalf("trace export does not parse as Chrome trace JSON: %v", err)
	}
	seen := make(map[string]bool)
	tracedIDs := make(map[string]bool)
	for _, e := range log.Events() {
		seen[e.Name] = true
		if id, ok := e.Args["trace_id"].(string); ok {
			tracedIDs[id] = true
		}
	}
	for _, want := range []string{
		StageAdmission, StageQueueWait, StageBatchAssembly, StageForward, StageEncode,
		capsnet.StageConv, capsnet.StageRoutingIteration, "request_done",
	} {
		if !seen[want] {
			t.Errorf("trace export missing %q spans (saw %v)", want, seen)
		}
	}
	overlap := 0
	for id := range ids {
		if tracedIDs[id] {
			overlap++
		}
	}
	if overlap == 0 {
		t.Errorf("no response trace ID appears in the export: headers %v, export %v", ids, tracedIDs)
	}

	// Invalid ?last= is rejected.
	badResp, err := http.Get(ts.URL + "/debug/requests/trace?last=zero")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, badResp.Body)
	badResp.Body.Close()
	if badResp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad ?last= got status %d, want 400", badResp.StatusCode)
	}

	// pprof admin surface answers.
	pprofResp, err := http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, pprofResp.Body)
	pprofResp.Body.Close()
	if pprofResp.StatusCode != http.StatusOK {
		t.Errorf("pprof index status %d", pprofResp.StatusCode)
	}

	// Structured logs: one JSON record per request, trace IDs matching
	// the response headers.
	logged := make(map[string]bool)
	for _, line := range strings.Split(strings.TrimSpace(logBuf.String()), "\n") {
		var rec struct {
			Msg     string  `json:"msg"`
			TraceID string  `json:"trace_id"`
			Status  int     `json:"status"`
			Latency float64 `json:"latency_seconds"`
			Batch   int     `json:"batch"`
			Sampled bool    `json:"sampled"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("log line not JSON: %q: %v", line, err)
		}
		if rec.Msg != "classify" || rec.Status != 200 || !rec.Sampled || rec.Latency <= 0 || rec.Batch < 1 {
			t.Errorf("unexpected log record: %q", line)
		}
		logged[rec.TraceID] = true
	}
	for id := range ids {
		if !logged[id] {
			t.Errorf("trace ID %s missing from logs (logged: %v)", id, logged)
		}
	}
}

// syncWriter serializes concurrent handler writes from per-connection
// goroutines.
type syncWriter struct {
	mu sync.Mutex
	w  io.Writer
}

func (s *syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}

// TestTracingDisabledByDefault checks the zero config issues trace IDs
// but records no spans and retains no traces.
func TestTracingDisabledByDefault(t *testing.T) {
	network, images := testNetwork(t, 3)
	srv, err := New(network, capsnet.ExactMath{}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close(context.Background())

	resp, _ := postClassify(t, ts.URL, images[0])
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if id := resp.Header.Get("X-Trace-Id"); !traceIDRe.MatchString(id) {
		t.Errorf("trace IDs should still be issued when sampling is off; got %q", id)
	}
	if srv.Tracer().Enabled() {
		t.Error("tracer enabled with TraceSample 0")
	}
	if got := srv.Tracer().Completed(); got != 0 {
		t.Errorf("retained %d traces with sampling off", got)
	}
	// Stage histograms stay on regardless (they are the cheap part).
	if srv.Metrics().StageHistogram(StageForward).Count() == 0 {
		t.Error("stage histograms should observe even with sampling off")
	}
	// The export endpoint still answers, with an empty event list.
	traceResp, err := http.Get(ts.URL + "/debug/requests/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer traceResp.Body.Close()
	log, err := trace.ReadJSON(traceResp.Body)
	if err != nil {
		t.Fatalf("empty trace export must still parse: %v", err)
	}
	if len(log.Events()) != 0 {
		t.Errorf("expected empty export, got %d events", len(log.Events()))
	}
}
