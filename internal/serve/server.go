package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"net/http/pprof"
	"os"
	"strconv"
	"sync/atomic"
	"time"

	"pimcapsnet/internal/capsnet"
	"pimcapsnet/internal/deadline"
	"pimcapsnet/internal/obs"
)

// ClassifyRequest is the POST /v1/classify body: one flattened image,
// Channels·H·W values in row-major C×H×W order, pixels in [0, 1].
type ClassifyRequest struct {
	Image []float32 `json:"image"`
}

// ClassifyResponse is the classify reply. Probs are the capsule
// lengths ‖v_j‖ (CapsNet's class probabilities), Poses the final
// DigitDim-dimensional capsule vector per class, and Batch the size of
// the micro-batch this request shared a forward pass with.
type ClassifyResponse struct {
	Class int         `json:"class"`
	Probs []float32   `json:"probs"`
	Poses [][]float32 `json:"poses"`
	Batch int         `json:"batch"`
}

// ModelInfo is the GET /v1/model reply describing the loaded network,
// so clients can size their images without out-of-band knowledge.
type ModelInfo struct {
	Channels          int    `json:"channels"`
	Height            int    `json:"height"`
	Width             int    `json:"width"`
	Classes           int    `json:"classes"`
	DigitDim          int    `json:"digit_dim"`
	RoutingIterations int    `json:"routing_iterations"`
	RoutingMode       string `json:"routing_mode"`
}

// Server wires a capsnet.Network, the micro-batcher, and the metrics
// into an http.Handler. Construct with New, mount Handler, and call
// Close for graceful shutdown.
type Server struct {
	cfg     Config
	net     *capsnet.Network
	batcher *Batcher
	metrics *Metrics
	mux     *http.ServeMux
	// draining flips readiness to 503 the moment shutdown begins, so
	// load balancers stop routing before in-flight work finishes.
	draining atomic.Bool
	imgLen   int

	// tracer issues per-request trace IDs, samples span timelines, and
	// retains completed traces for /debug/requests/trace.
	tracer *obs.Tracer
	// flight is the tail-sampled flight recorder behind
	// /debug/requests/flight; nil when Config.FlightBuffer is 0.
	flight *obs.FlightRecorder
	// clock is the observability time source (Config.Clock or
	// time.Now).
	clock obs.Clock
	// logger receives one structured record per classify request when
	// non-nil.
	logger *slog.Logger
}

// New builds and starts a server over net. The network's weights must
// stay immutable while the server runs (see capsnet.ForwardBatch's
// concurrency contract). mathOps selects the routing numerics —
// capsnet.ExactMath{} for host numerics, capsnet.NewPEMath() for the
// PIM processing-element approximations.
func New(network *capsnet.Network, mathOps capsnet.RoutingMath, cfg Config) (*Server, error) {
	return NewWithMetrics(network, mathOps, cfg, nil)
}

// NewWithMetrics is New with an externally created metric set, so the
// process can count events that happen before the server exists (e.g.
// checkpoint load rejections via LoadCheckpoint) on the same /metrics
// endpoint. A nil m allocates a fresh set.
func NewWithMetrics(network *capsnet.Network, mathOps capsnet.RoutingMath, cfg Config, m *Metrics) (*Server, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if m == nil {
		m = NewMetrics()
	}
	// The brownout controller exists only when enabled; the nil checks
	// below keep the disabled server's forward path untouched (and
	// bit-identical — see TestBrownoutDisabledBitIdentical).
	var br *brownout
	if cfg.Brownout.Enabled {
		br = newBrownout(cfg.Brownout, network.Config.RoutingIterations)
		m.BrownoutLevel = br.Level
		m.SetBrownoutLevels(br.levels())
	}
	// approxMath is built once so the brownout's deepest level does not
	// allocate lookup tables per batch.
	var approxMath capsnet.RoutingMath
	if br != nil && cfg.Brownout.AllowApprox {
		approxMath = capsnet.NewPEMath()
	}
	run := func(images [][]float32) []Prediction {
		mo := mathOps
		if approxMath != nil && br.approxActive() {
			mo = approxMath
		}
		out := network.ForwardBatch(images, mo)
		// Everything the response needs is copied out below, so the
		// Output's scratch arena goes back to the network's pool as soon
		// as this function returns — the step that keeps steady-state
		// inference allocation-free.
		defer out.Release()
		nc, dd := network.Config.Classes, network.Config.DigitDim
		preds := make([]Prediction, len(images))
		if out.Aborted {
			// Cooperative abort: every rider already expired, so no one
			// reads these predictions — the sentinel lets the batcher
			// count the abort.
			for k := range preds {
				preds[k] = Prediction{Err: ErrBatchAborted}
			}
			return preds
		}
		classes := out.Predictions()
		for k := range images {
			probs := make([]float32, nc)
			copy(probs, out.Lengths.Data()[k*nc:(k+1)*nc])
			poses := make([][]float32, nc)
			for j := 0; j < nc; j++ {
				pose := make([]float32, dd)
				copy(pose, out.Capsules.Data()[(k*nc+j)*dd:(k*nc+j+1)*dd])
				poses[j] = pose
			}
			preds[k] = Prediction{Class: classes[k], Probs: probs, Poses: poses}
		}
		// Degradation ladder: samples the routing guard recovered with
		// exact math are counted; samples still non-finite fail alone
		// with a typed error instead of emitting NaN JSON.
		if n := len(out.ExactFallbacks); n > 0 {
			m.AddRoutingFallbacks(n)
		}
		for _, k := range out.NonFinite {
			preds[k] = Prediction{Err: ErrNonFinite}
		}
		return preds
	}
	b := NewBatcher(cfg, run, m, network.Config.RoutingIterations)
	// Cooperative cancellation: the routing loop polls the batcher's
	// cancel flag between iterations (an atomic load — inactive cost is
	// one branch per iteration, and polling never alters results).
	network.Cancel = b.CancelRequested
	if br != nil {
		b.brown = br
		network.IterationLimit = br.iterationCap
	}
	// Attach the forward-pass stage hook: the recorder owns the clock
	// (capsnet stays free of time sources and of any obs import), feeds
	// every stage duration into the per-stage histograms, and lands
	// spans on whichever batch trace the runner attaches. Note this
	// sets network.Stages, so the network passed in is observed for as
	// long as it lives.
	rec := obs.NewStageRecorder(cfg.Clock, func(stage string, iter int, seconds float64) {
		m.ObserveStage(stage, seconds)
		if stage == capsnet.StageRoutingIteration {
			m.RoutingIteration.Observe(seconds)
		}
	})
	network.Stages = rec
	b.rec = rec
	// Scrape-time gauges over the network's scratch-arena pool and the
	// routing partition choices (callback pattern, like QueueDepth).
	m.ArenaBytes = network.ArenaBytes
	m.PartitionCounts = network.PartitionCounts
	s := newServer(network, cfg, b, m)
	b.Start()
	return s, nil
}

// newServer wires an already-constructed (possibly not yet started)
// batcher; split from New so tests can inject instrumented batchers.
func newServer(network *capsnet.Network, cfg Config, b *Batcher, m *Metrics) *Server {
	m.QueueDepth = b.QueueDepth
	clock := cfg.Clock
	if clock == nil {
		clock = time.Now
	}
	s := &Server{
		cfg: cfg, net: network, batcher: b, metrics: m, imgLen: network.ImageLen(),
		clock:  clock,
		logger: cfg.Logger,
		tracer: obs.NewTracer(obs.TracerConfig{
			Sample:     cfg.TraceSample,
			BufferSize: cfg.TraceBuffer,
			Clock:      cfg.Clock,
		}),
	}
	if cfg.FlightBuffer > 0 {
		s.flight = obs.NewFlightRecorder(obs.FlightConfig{
			Capacity:      cfg.FlightBuffer,
			SlowThreshold: cfg.SlowThreshold,
		})
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v1/classify", s.handleClassify)
	s.mux.HandleFunc("/v1/model", s.handleModel)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	s.mux.Handle("/metrics", m.Handler())
	s.mux.HandleFunc("/debug/requests/trace", s.handleRequestTrace)
	s.mux.HandleFunc("/debug/requests/flight", s.handleFlight)
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return s
}

// Tracer exposes the request tracer (tests and the shutdown trace
// export in cmd/capsnet-serve read the ring through it).
func (s *Server) Tracer() *obs.Tracer { return s.tracer }

// Flight exposes the flight recorder (nil when disabled); the
// shutdown trace export merges its pinned traces with the sampled
// ring.
func (s *Server) Flight() *obs.FlightRecorder { return s.flight }

// Handler returns the root handler (mount it on an http.Server or
// httptest.Server).
func (s *Server) Handler() http.Handler { return s.mux }

// Metrics exposes the metric set (the e2e tests and benchmarks read
// it directly).
func (s *Server) Metrics() *Metrics { return s.metrics }

// Close performs the batcher half of graceful shutdown: readiness
// flips to 503 immediately, then queued and in-flight batches drain
// within cfg.DrainTimeout (further bounded by ctx, so a caller with
// its own shutdown budget can cut the drain short). Call it after
// http.Server.Shutdown has stopped accepting connections.
func (s *Server) Close(ctx context.Context) error {
	s.draining.Store(true)
	ctx, cancel := context.WithTimeout(ctx, s.cfg.DrainTimeout)
	defer cancel()
	return s.batcher.Close(ctx)
}

// StartDraining flips /readyz to 503 without stopping the batcher,
// for the window between SIGTERM and http.Server.Shutdown completing.
func (s *Server) StartDraining() { s.draining.Store(true) }

func (s *Server) handleClassify(w http.ResponseWriter, r *http.Request) {
	s.metrics.IncRequest()
	start := s.clock()
	// Every request gets a trace ID (response header + log
	// correlation); only sampled requests get a live span trace. A
	// caller-supplied X-Trace-Id is honored so IDs can follow a request
	// across services.
	id := r.Header.Get(obs.TraceIDHeader)
	if id == "" {
		id = s.tracer.NewID()
	}
	// A flight-recorder-armed server records every request live (the
	// bad ones must have spans to pin); the tail-sampling decision
	// happens at completion. Otherwise only counter-sampled requests
	// carry a trace.
	var t *obs.Trace
	if s.flight != nil {
		t = s.tracer.StartAlways(id, start)
	} else {
		t = s.tracer.StartRequest(id, start)
	}
	if parent := r.Header.Get(obs.ParentSpanHeader); parent != "" {
		t.SetParent(parent)
	}
	r = r.WithContext(obs.WithTrace(r.Context(), id, t))
	code, body, flightReasons := s.classify(r)
	s.metrics.IncResponse(code)
	if code == http.StatusTooManyRequests {
		// Backpressure: a slot frees up after at most one batch fill,
		// so an immediate retry is reasonable.
		w.Header().Set("Retry-After", "1")
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set(obs.TraceIDHeader, id)
	w.WriteHeader(code)
	encStart := s.clock()
	json.NewEncoder(w).Encode(body)
	end := s.clock()
	s.metrics.ObserveStage(StageEncode, end.Sub(encStart).Seconds())
	t.Add(StageEncode, -1, encStart, end)
	if t != nil {
		s.tracer.Finish(t, end)
		if t.Sampled() {
			s.metrics.IncTraces()
		}
	}
	brLvl := 0
	if s.metrics.BrownoutLevel != nil {
		brLvl = s.metrics.BrownoutLevel()
	}
	s.flight.Note(t, code, end.Sub(start), brLvl, flightReasons...)
	latency := end.Sub(start).Seconds()
	s.metrics.Latency.Observe(latency)
	if s.logger != nil {
		lvl := slog.LevelInfo
		switch {
		case code >= 500:
			lvl = slog.LevelError
		case code >= 400:
			lvl = slog.LevelWarn
		}
		batch := 0
		if resp, ok := body.(ClassifyResponse); ok {
			batch = resp.Batch
		}
		s.logger.LogAttrs(r.Context(), lvl, "classify",
			slog.String("trace_id", id),
			slog.Int("status", code),
			slog.Float64("latency_seconds", latency),
			slog.Int("batch", batch),
			slog.Bool("sampled", t.Sampled()),
		)
	}
}

// handleRequestTrace serves the completed-trace ring as Chrome
// trace-event JSON (load the response in Perfetto / chrome://tracing).
// ?last=N bounds how many most-recent requests are included;
// ?trace=<id> restricts to the traces of one request (union of the
// sampled ring and the flight recorder's pins); &format=spans
// switches the ?trace response to the fragment JSON the router's
// fleet merger consumes.
func (s *Server) handleRequestTrace(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	if id := q.Get("trace"); id != "" {
		traces := s.findTraces(id)
		w.Header().Set("Content-Type", "application/json")
		if q.Get("format") == "spans" {
			obs.WriteFragments(w, traces)
			return
		}
		obs.WriteChromeTrace(w, traces, s.tracer.Epoch())
		return
	}
	n := s.cfg.TraceBuffer
	if qv := q.Get("last"); qv != "" {
		v, err := strconv.Atoi(qv)
		if err != nil || v < 1 {
			http.Error(w, "last must be a positive integer", http.StatusBadRequest)
			return
		}
		n = v
	}
	w.Header().Set("Content-Type", "application/json")
	obs.WriteChromeTrace(w, s.tracer.Last(n), s.tracer.Epoch())
}

// findTraces unions the sampled ring's and the flight recorder's
// traces for one trace ID, deduplicated by pointer (a pinned trace
// can also be ring-retained).
func (s *Server) findTraces(id string) []*obs.Trace {
	traces := s.tracer.Find(id)
	if s.flight != nil {
		seen := make(map[*obs.Trace]bool, len(traces))
		for _, t := range traces {
			seen[t] = true
		}
		for _, t := range s.flight.Find(id) {
			if !seen[t] {
				traces = append(traces, t)
			}
		}
	}
	return traces
}

// handleFlight serves the flight recorder's pinned requests as JSON.
func (s *Server) handleFlight(w http.ResponseWriter, r *http.Request) {
	if s.flight == nil {
		http.Error(w, "flight recorder disabled (set FlightBuffer > 0)", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	s.flight.WriteJSON(w)
}

// errorBody is the JSON error payload.
type errorBody struct {
	Error string `json:"error"`
}

// classify runs the request through validation and the batcher. The
// third return lists caller-known flight-recorder pin reasons (batch
// aborted) the status code alone cannot convey.
func (s *Server) classify(r *http.Request) (int, any, []string) {
	if r.Method != http.MethodPost {
		return http.StatusMethodNotAllowed, errorBody{Error: "POST only"}, nil
	}
	aStart := s.clock()
	var req ClassifyRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		return http.StatusBadRequest, errorBody{Error: fmt.Sprintf("decoding body: %v", err)}, nil
	}
	if len(req.Image) != s.imgLen {
		return http.StatusBadRequest, errorBody{
			Error: fmt.Sprintf("image has %d values, want %d (C×H×W = %d×%d×%d)",
				len(req.Image), s.imgLen, s.net.Config.InputChannels, s.net.Config.InputH, s.net.Config.InputW),
		}, nil
	}
	for i, v := range req.Image {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			return http.StatusBadRequest, errorBody{
				Error: fmt.Sprintf("image[%d] is %v; pixels must be finite", i, v),
			}, nil
		}
	}
	// Admission closes here: decode + validation done, the request
	// enters the batching pipeline. Rejected requests never reach the
	// pipeline, so they record no admission stage.
	aEnd := s.clock()
	s.metrics.ObserveStage(StageAdmission, aEnd.Sub(aStart).Seconds())
	obs.TraceFrom(r.Context()).Add(StageAdmission, -1, aStart, aEnd)
	// End-to-end deadline propagation: an upstream-supplied absolute
	// deadline bounds this request, capped by RequestTimeout so a
	// generous client budget cannot pin a request here forever. A
	// deadline already in the past is rejected up front — running
	// inference for a caller that stopped waiting is pure waste.
	dl, hasDL, err := deadline.FromRequest(r.Header)
	if err != nil {
		return http.StatusBadRequest, errorBody{Error: fmt.Sprintf("invalid %s header: %v", deadline.Header, err)}, nil
	}
	now := time.Now()
	if hasDL && !dl.After(now) {
		s.metrics.IncDeadlineExpired()
		return http.StatusGatewayTimeout, errorBody{Error: "deadline already expired on arrival"}, nil
	}
	var ctx context.Context
	var cancel context.CancelFunc
	if hasDL {
		if cap := now.Add(s.cfg.RequestTimeout); dl.After(cap) {
			dl = cap
		}
		ctx, cancel = context.WithDeadline(r.Context(), dl)
	} else {
		ctx, cancel = context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	}
	defer cancel()
	pred, batch, err := s.batcher.Submit(ctx, req.Image)
	switch {
	case err == nil:
		return http.StatusOK, ClassifyResponse{Class: pred.Class, Probs: pred.Probs, Poses: pred.Poses, Batch: batch}, nil
	case errors.Is(err, ErrQueueFull):
		return http.StatusTooManyRequests, errorBody{Error: "admission queue full, retry later"}, nil
	case errors.Is(err, ErrClosed):
		return http.StatusServiceUnavailable, errorBody{Error: "server shutting down"}, nil
	case errors.Is(err, context.DeadlineExceeded):
		if hasDL {
			s.metrics.IncDeadlineExpired()
		}
		return http.StatusGatewayTimeout, errorBody{Error: "request deadline exceeded"}, nil
	case errors.Is(err, ErrBatchAborted):
		// Defensive: abort predictions only exist once every rider
		// expired, so normally ctx.Err() wins the Submit select first.
		return http.StatusGatewayTimeout, errorBody{Error: "request deadline exceeded"},
			[]string{obs.FlightReasonBatchAborted}
	case errors.Is(err, ErrNonFinite):
		return http.StatusInternalServerError, errorBody{Error: "model produced non-finite output for this input (exact-math fallback did not recover it)"}, nil
	case errors.Is(err, ErrBatchPanic):
		return http.StatusInternalServerError, errorBody{Error: "inference failed for this batch; the server recovered and keeps serving"}, nil
	case errors.Is(err, ErrBatchTimeout):
		return http.StatusInternalServerError, errorBody{Error: "inference exceeded the batch deadline and was abandoned"}, nil
	default:
		return http.StatusInternalServerError, errorBody{Error: err.Error()}, nil
	}
}

func (s *Server) handleModel(w http.ResponseWriter, r *http.Request) {
	cfg := s.net.Config
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(ModelInfo{
		Channels:          cfg.InputChannels,
		Height:            cfg.InputH,
		Width:             cfg.InputW,
		Classes:           cfg.Classes,
		DigitDim:          cfg.DigitDim,
		RoutingIterations: cfg.RoutingIterations,
		RoutingMode:       s.net.Digit.Mode.String(),
	})
}

// handleHealthz reports process liveness: always 200 while the
// process can serve HTTP at all.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

// LoadInfo is the machine-readable /readyz body: the load signals a
// routing tier's least-loaded dispatch needs to rank replicas. The
// status-code contract is unchanged — 200 while serving, 503 once
// draining — so probes that only look at the code keep working; the
// body upgrades from bare text to this JSON document.
type LoadInfo struct {
	// Status is "ready" or "draining", mirroring the status code.
	Status string `json:"status"`
	// QueueDepth and QueueCapacity describe the admission queue:
	// requests admitted but not yet collected into a batch, and the
	// bound beyond which admission returns 429.
	QueueDepth    int `json:"queue_depth"`
	QueueCapacity int `json:"queue_capacity"`
	// Inflight counts admitted requests whose responses are still
	// pending (queued, under collection, or riding the running batch) —
	// the replica's outstanding work, the E term of the placement
	// model.
	Inflight int `json:"inflight"`
	// BatchOccupancy is the most recent launched batch's fill fraction
	// (LastBatchSize/MaxBatch): how much of the batch-sharing win the
	// replica is currently realizing.
	BatchOccupancy float64 `json:"batch_occupancy"`
	// MaxBatch is the configured micro-batch size cap.
	MaxBatch int `json:"max_batch"`
	// PID identifies the serving process, so a cluster controller can
	// correlate replicas with processes (and chaos drills can kill
	// them).
	PID int `json:"pid"`
}

// Load snapshots the current load signals (the /readyz body).
func (s *Server) Load() LoadInfo {
	status := "ready"
	if s.draining.Load() {
		status = "draining"
	}
	return LoadInfo{
		Status:         status,
		QueueDepth:     s.batcher.QueueDepth(),
		QueueCapacity:  s.cfg.QueueSize,
		Inflight:       s.batcher.Inflight(),
		BatchOccupancy: float64(s.batcher.LastBatchSize()) / float64(s.cfg.MaxBatch),
		MaxBatch:       s.cfg.MaxBatch,
		PID:            os.Getpid(),
	}
}

// handleReadyz reports readiness to take traffic: 503 once draining,
// with the LoadInfo JSON body in both states.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	info := s.Load()
	w.Header().Set("Content-Type", "application/json")
	if info.Status != "ready" {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	json.NewEncoder(w).Encode(info)
}
