package serve

import (
	"math"
	"strings"
	"testing"

	"pimcapsnet/internal/obs"
)

func TestHistogramQuantiles(t *testing.T) {
	h := obs.NewHistogram(1, 2, 4, 8)
	// 50 observations ≤1, 30 in (1,2], 15 in (2,4], 5 in (4,8].
	for i := 0; i < 50; i++ {
		h.Observe(0.5)
	}
	for i := 0; i < 30; i++ {
		h.Observe(1.5)
	}
	for i := 0; i < 15; i++ {
		h.Observe(3)
	}
	for i := 0; i < 5; i++ {
		h.Observe(6)
	}
	if h.Count() != 100 {
		t.Fatalf("count %d, want 100", h.Count())
	}
	if got := h.Quantile(0.5); got <= 0 || got > 1 {
		t.Errorf("p50 %g outside first bucket (0, 1]", got)
	}
	if got := h.Quantile(0.95); got <= 2 || got > 4 {
		t.Errorf("p95 %g outside bucket (2, 4]", got)
	}
	if got := h.Quantile(0.99); got <= 4 || got > 8 {
		t.Errorf("p99 %g outside bucket (4, 8]", got)
	}
	if sum := h.Sum(); math.Abs(sum-(50*0.5+30*1.5+15*3+5*6)) > 1e-3 {
		t.Errorf("sum %g, want 145", sum)
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	h := obs.NewHistogram(1, 2)
	h.Observe(100) // lands in +Inf, attributed to the largest bound
	if got := h.Quantile(0.99); got != 2 {
		t.Errorf("+Inf quantile %g, want capped at 2", got)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := obs.NewHistogram(1)
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("empty quantile %g, want 0", got)
	}
}

func TestMetricsExposition(t *testing.T) {
	m := NewMetrics()
	m.IncRequest()
	m.IncResponse(200)
	m.IncResponse(429)
	m.IncResponse(418) // not in the fixed set → "other"
	m.ObserveBatch(4, 3)
	m.ObserveBatch(8, 3)
	m.Latency.Observe(0.003)
	m.QueueDepth = func() int { return 5 }

	var sb strings.Builder
	m.WriteText(&sb)
	text := sb.String()
	for _, want := range []string{
		"capsnet_requests_total 1",
		`capsnet_responses_total{code="200"} 1`,
		`capsnet_responses_total{code="429"} 1`,
		`capsnet_responses_total{code="other"} 1`,
		"capsnet_queue_depth 5",
		"capsnet_batches_total 2",
		"capsnet_routing_iterations_total 6",
		`capsnet_request_latency_seconds{quantile="0.5"}`,
		`capsnet_request_latency_seconds_bucket{le="+Inf"} 1`,
		"capsnet_request_latency_seconds_count 1",
		`capsnet_batch_size_bucket{le="4"} 1`,
		`capsnet_batch_size_bucket{le="8"} 2`,
		"capsnet_batch_size_count 2",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
}

// TestRobustnessCounters exercises the degradation-ladder counters and
// their exposition lines: recovered panics, watchdog-failed batches,
// exact-math routing fallbacks, and rejected checkpoints.
func TestRobustnessCounters(t *testing.T) {
	m := NewMetrics()
	if m.PanicsRecovered()+m.WatchdogBatches()+m.RoutingFallbacks()+m.CheckpointRejections() != 0 {
		t.Fatal("robustness counters must start at zero")
	}
	m.IncPanicRecovered()
	m.IncPanicRecovered()
	m.IncWatchdogBatch()
	m.AddRoutingFallbacks(3)
	m.AddRoutingFallbacks(1)
	m.IncCheckpointRejection()

	if got := m.PanicsRecovered(); got != 2 {
		t.Errorf("PanicsRecovered %d, want 2", got)
	}
	if got := m.WatchdogBatches(); got != 1 {
		t.Errorf("WatchdogBatches %d, want 1", got)
	}
	if got := m.RoutingFallbacks(); got != 4 {
		t.Errorf("RoutingFallbacks %d, want 4", got)
	}
	if got := m.CheckpointRejections(); got != 1 {
		t.Errorf("CheckpointRejections %d, want 1", got)
	}

	var sb strings.Builder
	m.WriteText(&sb)
	text := sb.String()
	for _, want := range []string{
		"capsnet_panics_recovered_total 2",
		"capsnet_watchdog_failed_batches_total 1",
		"capsnet_routing_exact_fallbacks_total 4",
		"capsnet_checkpoint_load_rejections_total 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
}
