package serve

import (
	"errors"

	"pimcapsnet/internal/capsnet"
)

// LoadCheckpoint loads a model checkpoint for serving. Checkpoints
// that fail structural verification (bad magic, truncation, CRC
// mismatch — anything wrapping capsnet.ErrCorruptCheckpoint) are
// counted in m's capsnet_checkpoint_load_rejections_total, so a bad
// model push is visible on the same /metrics endpoint the server
// exposes. m may be nil.
func LoadCheckpoint(path string, m *Metrics) (*capsnet.Network, error) {
	n, err := capsnet.LoadFile(path)
	if err != nil && errors.Is(err, capsnet.ErrCorruptCheckpoint) && m != nil {
		m.IncCheckpointRejection()
	}
	return n, err
}
