package serve

import (
	"os"
	"testing"

	"pimcapsnet/internal/testutil"
)

// TestMain arms the goroutine-leak net: the static goroleak analyzer
// proves every go statement here has bounded lifetime on paper, and
// this verifies the bound actually fires — a batcher whose Close fails
// to join its dispatcher/runner fails the whole binary.
func TestMain(m *testing.M) {
	os.Exit(testutil.VerifyNoLeaks(m))
}
