package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"pimcapsnet/internal/obs"
)

// Batcher errors surfaced to the HTTP layer.
var (
	// ErrQueueFull means the admission queue rejected the request;
	// the server maps it to 429 + Retry-After.
	ErrQueueFull = errors.New("serve: admission queue full")
	// ErrClosed means the batcher is shutting down; mapped to 503.
	ErrClosed = errors.New("serve: server shutting down")
	// ErrBatchPanic means the inference call for this request's batch
	// panicked; the batch was isolated (the server keeps serving) and
	// its requests are failed with 500.
	ErrBatchPanic = errors.New("serve: inference panicked")
	// ErrBatchTimeout means the watchdog failed this request's batch
	// after Config.BatchDeadline, so a stalled forward pass cannot
	// wedge the queue; mapped to 500.
	ErrBatchTimeout = errors.New("serve: batch exceeded deadline")
	// ErrNonFinite means the model produced NaN/Inf for this sample
	// even after the exact-math routing fallback (see capsnet's
	// finite-value guard); mapped to 500 rather than emitting NaN
	// probabilities.
	ErrNonFinite = errors.New("serve: non-finite model output")
	// ErrBatchAborted means the forward pass was cooperatively aborted
	// mid-routing because every request in the batch had already
	// expired (see Batcher.CancelRequested and capsnet.CancelCheck).
	// The callers are long gone — each already received its own
	// context error — so this error is bookkeeping: the run function
	// returns it per sample, and the batcher counts the abort.
	ErrBatchAborted = errors.New("serve: batch aborted, all requests expired")
)

// Prediction is the per-request inference result.
type Prediction struct {
	// Class is the argmax class.
	Class int
	// Probs holds ‖v_j‖ per class — CapsNet's class probabilities.
	Probs []float32
	// Poses holds the final capsule pose vector per class
	// (Classes×DigitDim).
	Poses [][]float32
	// Err, when non-nil, fails this request alone (its batchmates
	// still succeed) — e.g. ErrNonFinite for a sample the routing
	// guard could not recover.
	Err error
}

// RunFunc executes one assembled micro-batch and returns one
// Prediction per image, in order. The batcher guarantees len(images)
// ≥ 1 and calls it from a single runner goroutine.
type RunFunc func(images [][]float32) []Prediction

// request is one admitted classify call waiting for its batch.
type request struct {
	ctx  context.Context
	img  []float32
	done chan outcome // buffered(1); runner never blocks on it

	// trace is the request's sampled span trace (nil for unsampled
	// requests — the common case).
	trace *obs.Trace
	// enqueued is when Submit admitted the request; collected is when
	// the dispatcher pulled it off the queue. Their difference is the
	// queue-wait stage; collected → batch launch is batch assembly.
	enqueued  time.Time
	collected time.Time
}

type outcome struct {
	pred  Prediction
	batch int // size of the micro-batch the request rode in
	err   error
}

// Batcher is the dynamic micro-batcher: admitted requests queue until
// either MaxBatch accumulate or MaxDelay elapses since the batch's
// first request, then the whole batch runs as one forward call so the
// routing-procedure work is shared across requests (the software
// analogue of the paper's batch-shared Alg. 1).
//
// Two goroutines implement the two-stage pipeline of internal/
// pipeline.TwoStage: the dispatcher collects and assembles batch k+1
// while the runner executes batch k, so collection/preprocessing
// overlaps inference exactly like the paper's host stage overlaps the
// HMC routing stage.
type Batcher struct {
	cfg     Config
	run     RunFunc
	metrics *Metrics
	// routingIterations is reported to metrics per launched batch.
	routingIterations int

	q     *queue
	runCh chan []*request

	// timer creates the batch-fill deadline; tests inject a manual
	// channel here for deterministic timer control.
	timer func(time.Duration) <-chan time.Time
	// wdTimer creates the per-batch watchdog deadline, separately
	// injectable so fill-timer tests stay unaffected.
	wdTimer func(time.Duration) <-chan time.Time
	// abortTimer creates the all-expired abort check timer (armed at
	// the latest context deadline across the running batch's
	// requests), injectable like the other two.
	abortTimer func(time.Duration) <-chan time.Time

	// cancelArmed flips true while the currently running batch should
	// abort (every rider's context expired); the network's Cancel hook
	// reads it between routing iterations via CancelRequested.
	cancelArmed atomic.Bool

	// brown, when non-nil, is the brownout controller; the runner
	// feeds it each launched batch's worst queue wait.
	brown *brownout

	// clock stamps queue/pipeline stage boundaries (Config.Clock, or
	// time.Now).
	clock obs.Clock
	// rec, when non-nil, is the forward-pass stage recorder shared
	// with the network; the runner attaches each batch's trace to it
	// before inference so stage spans land on the right timeline.
	rec *obs.StageRecorder

	mu sync.RWMutex
	//pimcaps:guardedby mu
	closed bool

	// inflight counts requests admitted by Submit whose outcome has not
	// been returned to the caller yet; lastBatch remembers the size of
	// the most recently executed batch. Together with the queue depth
	// they form the /readyz load body the router tier's least-loaded
	// dispatch reads.
	inflight  atomic.Int64
	lastBatch atomic.Int64

	stop           chan struct{}
	dispatcherDone chan struct{}
	runnerDone     chan struct{}
}

// NewBatcher builds a batcher over cfg (already defaulted/validated by
// the caller) that executes batches with run. Call Start before
// Submit.
func NewBatcher(cfg Config, run RunFunc, m *Metrics, routingIterations int) *Batcher {
	clock := cfg.Clock
	if clock == nil {
		clock = time.Now
	}
	return &Batcher{
		cfg:               cfg,
		run:               run,
		metrics:           m,
		routingIterations: routingIterations,
		q:                 newQueue(cfg.QueueSize),
		runCh:             make(chan []*request, 1),
		timer:             reusableTimer(),
		wdTimer:           reusableTimer(),
		abortTimer:        reusableTimer(),
		clock:             clock,
		stop:              make(chan struct{}),
		dispatcherDone:    make(chan struct{}),
		runnerDone:        make(chan struct{}),
	}
}

// reusableTimer returns a timer factory backed by one lazily created
// time.Timer: each call re-arms it with a drain-safe reset and hands
// back its channel, so arming a deadline per batch stops costing one
// unstoppable time.After timer per batch. A factory (like the Batcher
// field it populates) must only ever be called from one goroutine: the
// dispatcher owns timer, the runner owns wdTimer and abortTimer.
func reusableTimer() func(time.Duration) <-chan time.Time {
	var t *time.Timer
	return func(d time.Duration) <-chan time.Time {
		if t == nil {
			t = time.NewTimer(d)
			return t.C
		}
		if !t.Stop() {
			select {
			case <-t.C:
			default:
			}
		}
		t.Reset(d)
		return t.C
	}
}

// Start launches the dispatcher and runner goroutines.
func (b *Batcher) Start() {
	go b.dispatch()
	go b.runLoop()
}

// QueueDepth is the current admission-queue depth.
func (b *Batcher) QueueDepth() int { return b.q.Len() }

// Inflight is the number of admitted requests whose callers are still
// waiting on an outcome (queued, under collection, or riding the
// in-flight batch).
func (b *Batcher) Inflight() int { return int(b.inflight.Load()) }

// LastBatchSize is the size of the most recently executed batch (0
// before the first batch runs). LastBatchSize/MaxBatch is the batcher
// occupancy: how full the micro-batches actually launch.
func (b *Batcher) LastBatchSize() int { return int(b.lastBatch.Load()) }

// CancelRequested reports whether the batch currently under execution
// should abort: every request riding it has expired, so finishing the
// forward pass is dead work. The server installs this as the network's
// capsnet.CancelCheck; the routing loop polls it between iterations.
// (A watchdog-abandoned forward pass keeps polling the same flag while
// later batches run — a later batch's abort can therefore also free an
// abandoned straggler, which only helps.)
func (b *Batcher) CancelRequested() bool { return b.cancelArmed.Load() }

// Submit admits one image and blocks until its batch has run or ctx
// expires. It returns the prediction and the size of the micro-batch
// the request shared. ErrQueueFull signals backpressure; ErrClosed
// signals shutdown.
func (b *Batcher) Submit(ctx context.Context, img []float32) (Prediction, int, error) {
	r := &request{
		ctx:      ctx,
		img:      img,
		done:     make(chan outcome, 1),
		trace:    obs.TraceFrom(ctx),
		enqueued: b.clock(),
	}
	b.mu.RLock()
	if b.closed {
		b.mu.RUnlock()
		return Prediction{}, 0, ErrClosed
	}
	admitted := b.q.TryPush(r)
	b.mu.RUnlock()
	if !admitted {
		return Prediction{}, 0, ErrQueueFull
	}
	b.inflight.Add(1)
	defer b.inflight.Add(-1)
	select {
	case out := <-r.done:
		return out.pred, out.batch, out.err
	case <-ctx.Done():
		// The request stays queued; the runner notices the expired
		// context and discards it into the buffered done channel.
		return Prediction{}, 0, ctx.Err()
	}
}

// dispatch collects requests into micro-batches. One batch at a time
// is under collection; handing it to runCh (capacity 1) lets the next
// collection overlap the previous batch's execution.
func (b *Batcher) dispatch() {
	defer close(b.dispatcherDone)
	for {
		var first *request
		select {
		case first = <-b.q.C():
			first.collected = b.clock()
		case <-b.stop:
			b.drain(nil)
			return
		}
		batch := []*request{first}
		timeout := b.timer(b.cfg.MaxDelay)
	collect:
		for len(batch) < b.cfg.MaxBatch {
			select {
			case r := <-b.q.C():
				r.collected = b.clock()
				batch = append(batch, r)
			case <-timeout:
				break collect
			case <-b.stop:
				b.drain(batch)
				return
			}
		}
		b.runCh <- batch
	}
}

// drain flushes the partial batch under collection plus everything
// still queued, then closes runCh so the runner exits after the last
// batch. Queued requests are batched normally so in-flight work
// completes with real results during graceful shutdown.
func (b *Batcher) drain(batch []*request) {
	for {
		for len(batch) < b.cfg.MaxBatch {
			r, ok := b.q.TryPop()
			if !ok {
				break
			}
			r.collected = b.clock()
			batch = append(batch, r)
		}
		if len(batch) == 0 {
			break
		}
		b.runCh <- batch
		batch = nil
	}
	close(b.runCh)
}

// runLoop executes assembled batches one at a time.
func (b *Batcher) runLoop() {
	defer close(b.runnerDone)
	for batch := range b.runCh {
		b.runBatch(batch)
	}
}

// runResult carries one batch execution's outcome from the inference
// goroutine back to the runner.
type runResult struct {
	preds    []Prediction
	panicVal any
	panicked bool
}

// runBatch drops requests whose context already expired, executes the
// rest as one forward call, and completes every request's done
// channel.
//
// The forward call runs on a child goroutine so the runner can
// isolate two failure modes instead of letting them take the server
// down: a panic anywhere under RunFunc (including re-panicked
// parallelFor worker panics) fails only this batch's requests with
// ErrBatchPanic, and a stall beyond Config.BatchDeadline is failed by
// the watchdog with ErrBatchTimeout so the queue keeps draining. An
// abandoned (timed-out) inference goroutine parks its late result in
// the buffered channel and is garbage collected.
func (b *Batcher) runBatch(batch []*request) {
	live := batch[:0]
	for _, r := range batch {
		if err := r.ctx.Err(); err != nil {
			r.done <- outcome{err: err}
			continue
		}
		live = append(live, r)
	}
	if len(live) == 0 {
		return
	}
	b.lastBatch.Store(int64(len(live)))
	// launch closes the batch-assembly stage and opens the forward
	// stage: one stamp, so the pipeline stages partition each request's
	// time in the batcher exactly.
	launch := b.clock()
	var batchTrace *obs.Trace
	var worstWait time.Duration
	images := make([][]float32, len(live))
	for i, r := range live {
		images[i] = r.img
		if qw := r.collected.Sub(r.enqueued); qw > worstWait {
			worstWait = qw
		}
		if b.metrics != nil {
			qw := r.collected.Sub(r.enqueued).Seconds()
			b.metrics.QueueWait.Observe(qw)
			b.metrics.ObserveStage(StageQueueWait, qw)
			b.metrics.ObserveStage(StageBatchAssembly, launch.Sub(r.collected).Seconds())
		}
		if r.trace != nil {
			r.trace.Add(StageQueueWait, -1, r.enqueued, r.collected)
			r.trace.Add(StageBatchAssembly, -1, r.collected, launch)
			if batchTrace == nil {
				// One transient trace collects the batch's forward-pass
				// stage spans; they are copied to every sampled rider
				// after the run.
				batchTrace = &obs.Trace{}
			}
		}
	}
	if b.rec != nil {
		// Attach (or detach, when no rider is sampled) before the
		// inference goroutine starts. BeginStage captures this pointer,
		// so a watchdog-abandoned forward pass keeps writing to its own
		// discarded batchTrace instead of racing the next batch's.
		b.rec.SetCurrent(batchTrace)
	}
	// Feed the brownout controller before the run so the level a batch
	// is served at reflects the pressure it arrived under, and snapshot
	// that level for the per-level request counters.
	level := 0
	if b.brown != nil {
		b.brown.observe(worstWait, launch)
		level = b.brown.Level()
	}
	// The cancel flag covers exactly one batch execution: re-arm
	// happens below if this batch's riders all expire mid-run.
	b.cancelArmed.Store(false)
	resCh := make(chan runResult, 1)
	go func() {
		defer func() {
			if p := recover(); p != nil {
				resCh <- runResult{panicked: true, panicVal: p}
			}
		}()
		if hook := b.cfg.PreRunHook; hook != nil {
			hook(images)
		}
		resCh <- runResult{preds: b.run(images)}
	}()
	var deadline <-chan time.Time
	if b.cfg.BatchDeadline > 0 {
		deadline = b.wdTimer(b.cfg.BatchDeadline)
	}
	abortCh := b.armAbort(live)
	for {
		select {
		case res := <-resCh:
			fwdEnd := b.clock()
			if res.panicked {
				if b.metrics != nil {
					b.metrics.IncPanicRecovered()
				}
				err := fmt.Errorf("%w: %v", ErrBatchPanic, res.panicVal)
				for _, r := range live {
					r.done <- outcome{err: err}
				}
				return
			}
			if b.metrics != nil {
				if batchAborted(res.preds) {
					b.metrics.IncBatchAborted()
				}
				b.metrics.ObserveBatch(len(live), b.routingIterations)
				b.metrics.ObserveStage(StageForward, fwdEnd.Sub(launch).Seconds())
				b.metrics.IncBrownoutRequests(level, len(live))
			}
			spans := batchTrace.Spans()
			for i, r := range live {
				r.trace.Add(StageForward, -1, launch, fwdEnd)
				r.trace.AddSpans(spans)
				r.done <- outcome{pred: res.preds[i], batch: len(live), err: res.preds[i].Err}
			}
			return
		case <-deadline:
			if b.metrics != nil {
				b.metrics.IncWatchdogBatch()
			}
			err := fmt.Errorf("%w (%v)", ErrBatchTimeout, b.cfg.BatchDeadline)
			for _, r := range live {
				r.done <- outcome{err: err}
			}
			return
		case <-abortCh:
			// The latest known context deadline has passed. If every
			// rider is indeed gone, arm the cooperative cancel so the
			// routing loop stops between iterations; otherwise re-arm
			// for the new latest deadline (a rider without one keeps
			// the batch uncancellable — armAbort returned nil and this
			// case never fires).
			if allExpired(live) {
				b.cancelArmed.Store(true)
				abortCh = nil
			} else {
				abortCh = b.armAbort(live)
			}
		}
	}
}

// armAbort returns a timer channel firing just after the latest
// context deadline across the batch's still-live requests — the
// earliest instant at which the whole batch could be expired. It
// returns nil (never fires) when some request has no deadline at all.
// The millisecond of slack keeps the common case to a single firing:
// by then every ctx.Err() has actually flipped.
func (b *Batcher) armAbort(live []*request) <-chan time.Time {
	var latest time.Time
	for _, r := range live {
		if r.ctx.Err() != nil {
			continue
		}
		d, ok := r.ctx.Deadline()
		if !ok {
			return nil
		}
		if d.After(latest) {
			latest = d
		}
	}
	if latest.IsZero() {
		// Everything expired between the live-filter and now; fire
		// immediately so the select arms the cancel.
		return b.abortTimer(0)
	}
	return b.abortTimer(time.Until(latest) + time.Millisecond)
}

// allExpired reports whether every request in the batch has an expired
// or cancelled context.
func allExpired(live []*request) bool {
	for _, r := range live {
		if r.ctx.Err() == nil {
			return false
		}
	}
	return true
}

// batchAborted reports whether the run function returned the
// cooperative-abort sentinel for this batch.
func batchAborted(preds []Prediction) bool {
	for i := range preds {
		if errors.Is(preds[i].Err, ErrBatchAborted) {
			return true
		}
	}
	return false
}

// Close stops admission, drains queued and in-flight batches, and
// waits for both goroutines, bounded by ctx. Safe to call more than
// once.
func (b *Batcher) Close(ctx context.Context) error {
	b.mu.Lock()
	already := b.closed
	b.closed = true
	b.mu.Unlock()
	if !already {
		close(b.stop)
	}
	select {
	case <-b.dispatcherDone:
	case <-ctx.Done():
		return ctx.Err()
	}
	select {
	case <-b.runnerDone:
	case <-ctx.Done():
		return ctx.Err()
	}
	return nil
}
