package serve

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"

	"pimcapsnet/internal/obs"
)

// Serving-pipeline stage names (the capsnet_stage_seconds label
// values the HTTP/batching layers observe; forward-pass internals use
// capsnet.Stage* names). Together the five pipeline stages partition
// a request's wall time, so their sums approximately account for
// end-to-end latency.
const (
	// StageAdmission is body decode + validation in the HTTP handler.
	StageAdmission = "admission"
	// StageQueueWait is time between queue admission and the batch
	// dispatcher collecting the request.
	StageQueueWait = "queue_wait"
	// StageBatchAssembly is time between collection and the batch
	// launching (waiting for batchmates or the fill timer).
	StageBatchAssembly = "batch_assembly"
	// StageForward is the batched forward pass (whose interior the
	// capsnet.Stage* stages further decompose).
	StageForward = "forward"
	// StageEncode is response serialization.
	StageEncode = "encode"
)

// defaultStageBuckets are the bucket bounds for every per-stage
// histogram: finer at the microsecond end than the request-latency
// layout because single stages (one routing iteration, one softmax
// pass) are much shorter than whole requests.
var defaultStageBuckets = []float64{
	0.000025, 0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5,
}

// Metrics aggregates everything the /metrics endpoint exposes. All
// methods are safe for concurrent use.
type Metrics struct {
	requests  atomic.Uint64
	responses [len(responseCodesArray)]atomic.Uint64
	other     atomic.Uint64

	// Latency is the end-to-end request latency in seconds, observed
	// by the HTTP handler (queueing + batching + forward + encode).
	Latency *obs.Histogram
	// BatchSize is the per-launched-batch request count.
	BatchSize *obs.Histogram
	// QueueWait is the per-request admission-queue wait in seconds
	// (capsnet_queue_wait_seconds) — the batching cost a request pays
	// for sharing its forward pass.
	QueueWait *obs.Histogram
	// RoutingIteration is the per-iteration dynamic-routing time in
	// seconds (capsnet_routing_iteration_seconds), the direct
	// production counterpart of the paper's Figure 3/4 routing
	// characterization.
	RoutingIteration *obs.Histogram

	// stages holds one histogram per observed stage label
	// (capsnet_stage_seconds{stage=...}), created on first
	// observation so capsnet can add stages without a schema change
	// here.
	stagesMu sync.RWMutex
	//pimcaps:guardedby stagesMu
	stages map[string]*obs.Histogram

	batches      atomic.Uint64
	routingIters atomic.Uint64
	tracesTotal  atomic.Uint64

	// Robustness counters (see the README's "Robustness & fault
	// injection" section for the degradation ladder they instrument).
	panicsRecovered  atomic.Uint64
	watchdogBatches  atomic.Uint64
	routingFallbacks atomic.Uint64
	checkpointRejts  atomic.Uint64

	// Overload-control counters (README "Overload & graceful
	// degradation"): batches cooperatively aborted mid-routing because
	// every rider had expired, requests rejected on arrival because
	// their propagated deadline had already passed, and per-brownout-
	// level request counts. brownoutLevels is how many {level=...}
	// series the exposition emits (set by the server from the
	// controller's level count; minimum 1 so level 0 always exists);
	// levels beyond the array clamp into the last slot.
	batchesAborted  atomic.Uint64
	deadlineExpired atomic.Uint64
	brownoutReqs    [maxBrownoutSeries]atomic.Uint64
	brownoutLevels  atomic.Int64

	// BrownoutLevel is sampled at scrape time from the brownout
	// controller (capsnet_brownout_level); nil reports 0 — a server
	// with brownout disabled is permanently at full fidelity.
	BrownoutLevel func() int

	// QueueDepth is sampled at scrape time from the admission queue.
	QueueDepth func() int

	// ArenaBytes is sampled at scrape time from the network's
	// scratch-arena pool (capsnet.Network.ArenaBytes): the bytes the
	// allocation-free forward path holds resident.
	ArenaBytes func() uint64

	// PartitionCounts is sampled at scrape time from the network
	// (capsnet.Network.PartitionCounts): how many routing runs sharded
	// on the batch dimension vs the high-level-capsule dimension.
	PartitionCounts func() (batch, hcaps uint64)
}

// responseCodesArray is the fixed set of status codes the server
// emits; anything else lands in the "other" counter.
var responseCodesArray = [...]int{200, 400, 404, 405, 429, 500, 503, 504}

// maxBrownoutSeries bounds the per-level request counter array: the
// brownout ladder has RoutingIterations-1 shedding levels plus at most
// one approx level plus level 0, and routing iteration counts in this
// family of networks are single digits.
const maxBrownoutSeries = 16

// NewMetrics creates the metric set with the server's bucket layouts:
// latency buckets from 0.5ms to 5s, batch-size buckets covering
// power-of-two micro-batch caps up to 64, stage buckets from 25µs up.
func NewMetrics() *Metrics {
	return &Metrics{
		Latency: obs.NewHistogram(0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
			0.05, 0.1, 0.25, 0.5, 1, 2.5, 5),
		BatchSize:        obs.NewHistogram(1, 2, 4, 8, 16, 32, 64),
		QueueWait:        obs.NewHistogram(defaultStageBuckets...),
		RoutingIteration: obs.NewHistogram(defaultStageBuckets...),
		stages:           make(map[string]*obs.Histogram),
	}
}

// IncRequest counts one admitted-or-not incoming classify request.
func (m *Metrics) IncRequest() { m.requests.Add(1) }

// IncResponse counts one response with the given HTTP status.
func (m *Metrics) IncResponse(code int) {
	for i, c := range responseCodesArray {
		if c == code {
			m.responses[i].Add(1)
			return
		}
	}
	m.other.Add(1)
}

// ObserveBatch records one launched batch of the given size running
// the given number of routing iterations.
func (m *Metrics) ObserveBatch(size, routingIterations int) {
	m.batches.Add(1)
	m.BatchSize.Observe(float64(size))
	m.routingIters.Add(uint64(routingIterations))
}

// ObserveStage records one completed pipeline or forward-pass stage
// of the given duration. Stage capsnet.StageRoutingIteration
// additionally feeds the dedicated routing-iteration histogram.
func (m *Metrics) ObserveStage(stage string, seconds float64) {
	m.StageHistogram(stage).Observe(seconds)
}

// StageHistogram returns (creating on first use) the histogram behind
// capsnet_stage_seconds{stage=...}.
func (m *Metrics) StageHistogram(stage string) *obs.Histogram {
	m.stagesMu.RLock()
	h, ok := m.stages[stage]
	m.stagesMu.RUnlock()
	if ok {
		return h
	}
	m.stagesMu.Lock()
	defer m.stagesMu.Unlock()
	if h, ok = m.stages[stage]; ok {
		return h
	}
	if m.stages == nil {
		m.stages = make(map[string]*obs.Histogram)
	}
	h = obs.NewHistogram(defaultStageBuckets...)
	m.stages[stage] = h
	return h
}

// IncTraces counts one request trace retained in the ring buffer.
func (m *Metrics) IncTraces() { m.tracesTotal.Add(1) }

// Batches returns the number of launched batches.
func (m *Metrics) Batches() uint64 { return m.batches.Load() }

// IncPanicRecovered counts one batch whose inference panicked and was
// isolated by the runner instead of crashing the process.
func (m *Metrics) IncPanicRecovered() { m.panicsRecovered.Add(1) }

// PanicsRecovered returns the recovered-panic count.
func (m *Metrics) PanicsRecovered() uint64 { return m.panicsRecovered.Load() }

// IncWatchdogBatch counts one batch failed by the BatchDeadline
// watchdog.
func (m *Metrics) IncWatchdogBatch() { m.watchdogBatches.Add(1) }

// WatchdogBatches returns the watchdog-failed batch count.
func (m *Metrics) WatchdogBatches() uint64 { return m.watchdogBatches.Load() }

// AddRoutingFallbacks counts n samples whose routing was re-run with
// exact math after the approximate path produced non-finite values.
func (m *Metrics) AddRoutingFallbacks(n int) { m.routingFallbacks.Add(uint64(n)) }

// RoutingFallbacks returns the exact-math routing fallback count.
func (m *Metrics) RoutingFallbacks() uint64 { return m.routingFallbacks.Load() }

// IncBatchAborted counts one batch cooperatively aborted mid-routing
// because every request riding it had already expired.
func (m *Metrics) IncBatchAborted() { m.batchesAborted.Add(1) }

// BatchesAborted returns the cooperatively aborted batch count.
func (m *Metrics) BatchesAborted() uint64 { return m.batchesAborted.Load() }

// IncDeadlineExpired counts one request rejected on arrival because
// its propagated deadline had already passed.
func (m *Metrics) IncDeadlineExpired() { m.deadlineExpired.Add(1) }

// DeadlinesExpired returns the expired-on-arrival request count.
func (m *Metrics) DeadlinesExpired() uint64 { return m.deadlineExpired.Load() }

// SetBrownoutLevels declares how many brownout levels the controller
// has, so the exposition emits a stable series per level. Clamped to
// [1, maxBrownoutSeries].
func (m *Metrics) SetBrownoutLevels(n int) {
	if n < 1 {
		n = 1
	}
	if n > maxBrownoutSeries {
		n = maxBrownoutSeries
	}
	m.brownoutLevels.Store(int64(n))
}

// IncBrownoutRequests counts n requests served at the given brownout
// level (levels beyond the declared range clamp into the last slot).
func (m *Metrics) IncBrownoutRequests(level, n int) {
	if level < 0 {
		level = 0
	}
	if level >= maxBrownoutSeries {
		level = maxBrownoutSeries - 1
	}
	m.brownoutReqs[level].Add(uint64(n))
}

// BrownoutRequests returns the request count at one brownout level.
func (m *Metrics) BrownoutRequests(level int) uint64 {
	if level < 0 || level >= maxBrownoutSeries {
		return 0
	}
	return m.brownoutReqs[level].Load()
}

// IncCheckpointRejection counts one checkpoint that failed structural
// verification (bad magic, truncation, CRC mismatch) at load time.
func (m *Metrics) IncCheckpointRejection() { m.checkpointRejts.Add(1) }

// CheckpointRejections returns the rejected-checkpoint count.
func (m *Metrics) CheckpointRejections() uint64 { return m.checkpointRejts.Load() }

// WriteText emits the full text exposition.
func (m *Metrics) WriteText(w io.Writer) {
	version, goVersion := obs.BuildInfo()
	fmt.Fprintf(w, "capsnet_build_info{version=%q,go_version=%q} 1\n", version, goVersion)
	fmt.Fprintf(w, "capsnet_requests_total %d\n", m.requests.Load())
	for i, c := range responseCodesArray {
		fmt.Fprintf(w, "capsnet_responses_total{code=\"%d\"} %d\n", c, m.responses[i].Load())
	}
	fmt.Fprintf(w, "capsnet_responses_total{code=\"other\"} %d\n", m.other.Load())
	depth := 0
	if m.QueueDepth != nil {
		depth = m.QueueDepth()
	}
	fmt.Fprintf(w, "capsnet_queue_depth %d\n", depth)
	var arenaBytes uint64
	if m.ArenaBytes != nil {
		arenaBytes = m.ArenaBytes()
	}
	fmt.Fprintf(w, "capsnet_arena_bytes %d\n", arenaBytes)
	var partB, partH uint64
	if m.PartitionCounts != nil {
		partB, partH = m.PartitionCounts()
	}
	fmt.Fprintf(w, "capsnet_routing_partition_total{dim=\"batch\"} %d\n", partB)
	fmt.Fprintf(w, "capsnet_routing_partition_total{dim=\"hcaps\"} %d\n", partH)
	fmt.Fprintf(w, "capsnet_batches_total %d\n", m.batches.Load())
	fmt.Fprintf(w, "capsnet_routing_iterations_total %d\n", m.routingIters.Load())
	fmt.Fprintf(w, "capsnet_request_traces_total %d\n", m.tracesTotal.Load())
	fmt.Fprintf(w, "capsnet_panics_recovered_total %d\n", m.panicsRecovered.Load())
	fmt.Fprintf(w, "capsnet_watchdog_failed_batches_total %d\n", m.watchdogBatches.Load())
	fmt.Fprintf(w, "capsnet_routing_exact_fallbacks_total %d\n", m.routingFallbacks.Load())
	fmt.Fprintf(w, "capsnet_checkpoint_load_rejections_total %d\n", m.checkpointRejts.Load())
	fmt.Fprintf(w, "capsnet_batch_aborted_total %d\n", m.batchesAborted.Load())
	fmt.Fprintf(w, "capsnet_deadline_expired_total %d\n", m.deadlineExpired.Load())
	lvl := 0
	if m.BrownoutLevel != nil {
		lvl = m.BrownoutLevel()
	}
	fmt.Fprintf(w, "capsnet_brownout_level %d\n", lvl)
	levels := int(m.brownoutLevels.Load())
	if levels < 1 {
		levels = 1
	}
	for i := 0; i < levels; i++ {
		fmt.Fprintf(w, "capsnet_brownout_requests_total{level=\"%d\"} %d\n", i, m.brownoutReqs[i].Load())
	}
	for _, g := range obs.RuntimeStats() {
		fmt.Fprintf(w, "%s %g\n", g.Name, g.Value)
	}
	m.Latency.WriteText(w, "capsnet_request_latency_seconds", "")
	m.BatchSize.WriteText(w, "capsnet_batch_size", "")
	m.QueueWait.WriteText(w, "capsnet_queue_wait_seconds", "")
	m.RoutingIteration.WriteText(w, "capsnet_routing_iteration_seconds", "")

	m.stagesMu.RLock()
	stages := make([]string, 0, len(m.stages))
	for s := range m.stages {
		stages = append(stages, s)
	}
	hists := make([]*obs.Histogram, len(stages))
	sort.Strings(stages)
	for i, s := range stages {
		hists[i] = m.stages[s]
	}
	m.stagesMu.RUnlock()
	for i, s := range stages {
		hists[i].WriteText(w, "capsnet_stage_seconds", fmt.Sprintf("stage=%q", s))
	}
}

// Handler returns the /metrics endpoint.
func (m *Metrics) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		m.WriteText(w)
	})
}
