package serve

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync/atomic"
)

// Histogram is a fixed-bucket, lock-free histogram. Observations land
// in the first bucket whose upper bound is ≥ the value; the final
// implicit bucket is +Inf. Quantiles are estimated by linear
// interpolation inside the containing bucket, which is exact enough
// for p50/p95/p99 dashboards on exponential bucket layouts.
type Histogram struct {
	bounds   []float64       // ascending upper bounds, excluding +Inf
	counts   []atomic.Uint64 // len(bounds)+1; last is the +Inf bucket
	count    atomic.Uint64
	sumMicro atomic.Uint64 // Σ value, in millionths of a unit
}

// NewHistogram creates a histogram with the given ascending upper
// bounds.
func NewHistogram(bounds ...float64) *Histogram {
	if len(bounds) == 0 {
		panic("serve: histogram needs at least one bucket bound")
	}
	if !sort.Float64sAreSorted(bounds) {
		panic("serve: histogram bounds must ascend")
	}
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	if v > 0 {
		h.sumMicro.Add(uint64(v * 1e6))
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observations (microsecond-granular).
func (h *Histogram) Sum() float64 { return float64(h.sumMicro.Load()) / 1e6 }

// Quantile estimates the q-th quantile (0 < q < 1) from the bucket
// counts. Observations in the +Inf bucket are attributed to the
// largest finite bound. Returns 0 when empty.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum float64
	for i := range h.counts {
		n := float64(h.counts[i].Load())
		if cum+n >= rank && n > 0 {
			hi := h.bounds[len(h.bounds)-1]
			if i < len(h.bounds) {
				hi = h.bounds[i]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			if hi <= lo {
				return hi
			}
			return lo + (hi-lo)*(rank-cum)/n
		}
		cum += n
	}
	return h.bounds[len(h.bounds)-1]
}

// writeText emits the histogram in Prometheus-style text exposition
// under the given metric name, including quantile, bucket, sum and
// count lines.
func (h *Histogram) writeText(w io.Writer, name string) {
	for _, q := range []float64{0.5, 0.95, 0.99} {
		fmt.Fprintf(w, "%s{quantile=%q} %g\n", name, fmt.Sprintf("%g", q), h.Quantile(q))
	}
	var cum uint64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, fmt.Sprintf("%g", b), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(w, "%s_sum %g\n", name, h.Sum())
	fmt.Fprintf(w, "%s_count %d\n", name, h.count.Load())
}

// Metrics aggregates everything the /metrics endpoint exposes. All
// methods are safe for concurrent use.
type Metrics struct {
	requests  atomic.Uint64
	responses [len(responseCodesArray)]atomic.Uint64
	other     atomic.Uint64

	// Latency is the end-to-end request latency in seconds, observed
	// by the HTTP handler (queueing + batching + forward + encode).
	Latency *Histogram
	// BatchSize is the per-launched-batch request count.
	BatchSize *Histogram

	batches      atomic.Uint64
	routingIters atomic.Uint64

	// Robustness counters (see the README's "Robustness & fault
	// injection" section for the degradation ladder they instrument).
	panicsRecovered  atomic.Uint64
	watchdogBatches  atomic.Uint64
	routingFallbacks atomic.Uint64
	checkpointRejts  atomic.Uint64

	// QueueDepth is sampled at scrape time from the admission queue.
	QueueDepth func() int
}

// responseCodesArray is the fixed set of status codes the server
// emits; anything else lands in the "other" counter.
var responseCodesArray = [...]int{200, 400, 404, 405, 429, 500, 503, 504}

// NewMetrics creates the metric set with the server's bucket layouts:
// latency buckets from 0.5ms to 5s, batch-size buckets covering
// power-of-two micro-batch caps up to 64.
func NewMetrics() *Metrics {
	return &Metrics{
		Latency: NewHistogram(0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
			0.05, 0.1, 0.25, 0.5, 1, 2.5, 5),
		BatchSize: NewHistogram(1, 2, 4, 8, 16, 32, 64),
	}
}

// IncRequest counts one admitted-or-not incoming classify request.
func (m *Metrics) IncRequest() { m.requests.Add(1) }

// IncResponse counts one response with the given HTTP status.
func (m *Metrics) IncResponse(code int) {
	for i, c := range responseCodesArray {
		if c == code {
			m.responses[i].Add(1)
			return
		}
	}
	m.other.Add(1)
}

// ObserveBatch records one launched batch of the given size running
// the given number of routing iterations.
func (m *Metrics) ObserveBatch(size, routingIterations int) {
	m.batches.Add(1)
	m.BatchSize.Observe(float64(size))
	m.routingIters.Add(uint64(routingIterations))
}

// Batches returns the number of launched batches.
func (m *Metrics) Batches() uint64 { return m.batches.Load() }

// IncPanicRecovered counts one batch whose inference panicked and was
// isolated by the runner instead of crashing the process.
func (m *Metrics) IncPanicRecovered() { m.panicsRecovered.Add(1) }

// PanicsRecovered returns the recovered-panic count.
func (m *Metrics) PanicsRecovered() uint64 { return m.panicsRecovered.Load() }

// IncWatchdogBatch counts one batch failed by the BatchDeadline
// watchdog.
func (m *Metrics) IncWatchdogBatch() { m.watchdogBatches.Add(1) }

// WatchdogBatches returns the watchdog-failed batch count.
func (m *Metrics) WatchdogBatches() uint64 { return m.watchdogBatches.Load() }

// AddRoutingFallbacks counts n samples whose routing was re-run with
// exact math after the approximate path produced non-finite values.
func (m *Metrics) AddRoutingFallbacks(n int) { m.routingFallbacks.Add(uint64(n)) }

// RoutingFallbacks returns the exact-math routing fallback count.
func (m *Metrics) RoutingFallbacks() uint64 { return m.routingFallbacks.Load() }

// IncCheckpointRejection counts one checkpoint that failed structural
// verification (bad magic, truncation, CRC mismatch) at load time.
func (m *Metrics) IncCheckpointRejection() { m.checkpointRejts.Add(1) }

// CheckpointRejections returns the rejected-checkpoint count.
func (m *Metrics) CheckpointRejections() uint64 { return m.checkpointRejts.Load() }

// WriteText emits the full text exposition.
func (m *Metrics) WriteText(w io.Writer) {
	fmt.Fprintf(w, "capsnet_requests_total %d\n", m.requests.Load())
	for i, c := range responseCodesArray {
		fmt.Fprintf(w, "capsnet_responses_total{code=\"%d\"} %d\n", c, m.responses[i].Load())
	}
	fmt.Fprintf(w, "capsnet_responses_total{code=\"other\"} %d\n", m.other.Load())
	depth := 0
	if m.QueueDepth != nil {
		depth = m.QueueDepth()
	}
	fmt.Fprintf(w, "capsnet_queue_depth %d\n", depth)
	fmt.Fprintf(w, "capsnet_batches_total %d\n", m.batches.Load())
	fmt.Fprintf(w, "capsnet_routing_iterations_total %d\n", m.routingIters.Load())
	fmt.Fprintf(w, "capsnet_panics_recovered_total %d\n", m.panicsRecovered.Load())
	fmt.Fprintf(w, "capsnet_watchdog_failed_batches_total %d\n", m.watchdogBatches.Load())
	fmt.Fprintf(w, "capsnet_routing_exact_fallbacks_total %d\n", m.routingFallbacks.Load())
	fmt.Fprintf(w, "capsnet_checkpoint_load_rejections_total %d\n", m.checkpointRejts.Load())
	m.Latency.writeText(w, "capsnet_request_latency_seconds")
	m.BatchSize.writeText(w, "capsnet_batch_size")
}

// Handler returns the /metrics endpoint.
func (m *Metrics) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		m.WriteText(w)
	})
}
