package serve

// queue is the bounded admission queue in front of the batcher. It is
// a thin wrapper over a buffered channel so the batcher can select on
// arrival, but centralizes the backpressure decision (non-blocking
// TryPush) and the depth gauge the /metrics endpoint samples.
type queue struct {
	ch chan *request
}

func newQueue(size int) *queue {
	return &queue{ch: make(chan *request, size)}
}

// TryPush admits r if a slot is free and reports whether it did; a
// false return is the signal for 429 backpressure.
func (q *queue) TryPush(r *request) bool {
	select {
	case q.ch <- r:
		return true
	default:
		return false
	}
}

// C exposes the receive side for the batcher's select loops.
func (q *queue) C() <-chan *request { return q.ch }

// TryPop removes one queued request without blocking (used by the
// shutdown drain).
func (q *queue) TryPop() (*request, bool) {
	select {
	case r := <-q.ch:
		return r, true
	default:
		return nil, false
	}
}

// Len is the current depth (requests admitted but not yet collected
// into a batch).
func (q *queue) Len() int { return len(q.ch) }
