// Package serve is the batching inference server for the CapsNet
// library: it exposes a trained capsnet.Network over HTTP and routes
// requests through a dynamic micro-batcher so squash/softmax/routing
// work is shared across concurrent requests, exactly the property the
// PIM-CapsNet paper exploits with its batch-shared Alg. 1 — the
// serving layer is the software analogue of the paper's hardware
// scheduling.
//
// The subsystem mirrors the two-stage host/HMC pipeline modeled in
// internal/pipeline: request decode/validation (stage one, done per
// connection by net/http handler goroutines) overlaps the batched
// Network.Forward of the previous batch (stage two, one in-flight
// batch executed by a dedicated runner goroutine), so steady-state
// throughput is set by the slower of the two sides, as in
// pipeline.TwoStage. Inside a batch, Forward fans the samples out
// over GOMAXPROCS workers via capsnet's parallelFor.
//
// Everything is standard library only.
package serve

import (
	"fmt"
	"log/slog"
	"time"

	"pimcapsnet/internal/obs"
)

// Config tunes the server and its micro-batcher. The zero value is
// usable: every field falls back to the documented default.
type Config struct {
	// MaxBatch is the micro-batch size cap: a batch launches as soon
	// as this many requests are queued. Default 8.
	MaxBatch int
	// MaxDelay is how long the batcher waits for a partial batch to
	// fill before launching it anyway. Default 2ms.
	MaxDelay time.Duration
	// QueueSize bounds the admission queue; requests arriving while it
	// is full are rejected with 429 + Retry-After (backpressure).
	// Default 64.
	QueueSize int
	// RequestTimeout is the per-request deadline covering queueing and
	// inference; expiry yields 504. Default 5s.
	RequestTimeout time.Duration
	// DrainTimeout bounds graceful shutdown: how long Close waits for
	// in-flight batches to finish. Default 10s.
	DrainTimeout time.Duration
	// BatchDeadline is the watchdog bound on one batch's inference: a
	// batch still running after this long is failed with
	// ErrBatchTimeout (HTTP 500) so a stalled forward pass cannot
	// wedge the queue behind it. Default 30s.
	BatchDeadline time.Duration
	// TraceSample is the fraction of requests whose full span timeline
	// (admission → queue wait → batch assembly → forward-pass stages →
	// encode) is recorded and retained for /debug/requests/trace, in
	// [0, 1]. Sampling is deterministic (every ⌈1/rate⌉-th request).
	// Default 0: no span recording — trace IDs, request logs, and the
	// per-stage histograms all still work, and an unsampled request
	// pays one nil check per span site.
	TraceSample float64
	// TraceBuffer is how many completed request traces the ring buffer
	// behind /debug/requests/trace retains. Default 256.
	TraceBuffer int
	// FlightBuffer, when positive, arms the tail-sampled flight
	// recorder: every request records spans live, and the full span set
	// of requests that end 5xx, ride an aborted batch, run under
	// brownout, or exceed SlowThreshold is pinned (up to FlightBuffer
	// entries) at /debug/requests/flight. 0 (the default) disables the
	// recorder entirely — the hot path then pays nothing beyond the
	// counter sampler.
	FlightBuffer int
	// SlowThreshold, when positive and the flight recorder is armed,
	// pins any request slower than this end-to-end regardless of
	// status. 0 disables the slow trigger.
	SlowThreshold time.Duration
	// Logger, when non-nil, receives one structured log record per
	// classify request (trace ID, status, latency, batch size). Nil
	// disables request logging.
	Logger *slog.Logger
	// Clock overrides the observability time source (trace spans,
	// queue-wait measurement); nil means time.Now. Tests inject a fake
	// clock here for deterministic span timings.
	Clock obs.Clock
	// Brownout configures the adaptive-fidelity overload controller:
	// under sustained queue pressure the server sheds routing
	// iterations (and optionally switches to approximate routing math)
	// instead of collapsing, stepping back up after recovery. The zero
	// value disables it entirely — the forward path is then
	// bit-identical to a server without the controller.
	Brownout BrownoutConfig
	// PreRunHook, when non-nil, is called by the batch runner with
	// the assembled batch images immediately before inference, on the
	// same goroutine the forward pass uses — so a hook that panics or
	// stalls exercises exactly the recovery and watchdog paths.
	// Fault-injection campaigns (internal/fault) install corruption,
	// panic, and stall hooks here; nil (the default) costs nothing.
	PreRunHook func(images [][]float32)
}

// Defaults for the zero Config.
const (
	DefaultMaxBatch       = 8
	DefaultMaxDelay       = 2 * time.Millisecond
	DefaultQueueSize      = 64
	DefaultRequestTimeout = 5 * time.Second
	DefaultDrainTimeout   = 10 * time.Second
	DefaultBatchDeadline  = 30 * time.Second
)

// withDefaults returns c with every zero field replaced by its
// default.
func (c Config) withDefaults() Config {
	if c.MaxBatch == 0 {
		c.MaxBatch = DefaultMaxBatch
	}
	if c.MaxDelay == 0 {
		c.MaxDelay = DefaultMaxDelay
	}
	if c.QueueSize == 0 {
		c.QueueSize = DefaultQueueSize
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = DefaultRequestTimeout
	}
	if c.DrainTimeout == 0 {
		c.DrainTimeout = DefaultDrainTimeout
	}
	if c.BatchDeadline == 0 {
		c.BatchDeadline = DefaultBatchDeadline
	}
	if c.TraceBuffer == 0 {
		c.TraceBuffer = obs.DefaultTraceBuffer
	}
	if c.Brownout.Enabled {
		c.Brownout = c.Brownout.withDefaults()
	}
	return c
}

// Validate reports an error for a nonsensical configuration (after
// defaulting).
func (c Config) Validate() error {
	if c.MaxBatch < 1 {
		return fmt.Errorf("serve: MaxBatch %d, need ≥ 1", c.MaxBatch)
	}
	if c.MaxDelay < 0 {
		return fmt.Errorf("serve: negative MaxDelay %v", c.MaxDelay)
	}
	if c.QueueSize < 1 {
		return fmt.Errorf("serve: QueueSize %d, need ≥ 1", c.QueueSize)
	}
	if c.RequestTimeout <= 0 {
		return fmt.Errorf("serve: RequestTimeout %v, need > 0", c.RequestTimeout)
	}
	if c.DrainTimeout <= 0 {
		return fmt.Errorf("serve: DrainTimeout %v, need > 0", c.DrainTimeout)
	}
	if c.BatchDeadline <= 0 {
		return fmt.Errorf("serve: BatchDeadline %v, need > 0", c.BatchDeadline)
	}
	if c.TraceSample < 0 || c.TraceSample > 1 {
		return fmt.Errorf("serve: TraceSample %g, need 0 ≤ rate ≤ 1", c.TraceSample)
	}
	if c.TraceBuffer < 1 {
		return fmt.Errorf("serve: TraceBuffer %d, need ≥ 1", c.TraceBuffer)
	}
	if c.FlightBuffer < 0 {
		return fmt.Errorf("serve: FlightBuffer %d, need ≥ 0", c.FlightBuffer)
	}
	if c.SlowThreshold < 0 {
		return fmt.Errorf("serve: negative SlowThreshold %v", c.SlowThreshold)
	}
	if err := c.Brownout.validate(); err != nil {
		return err
	}
	return nil
}
