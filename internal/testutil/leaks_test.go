package testutil

import (
	"strings"
	"testing"
	"time"
)

func TestGoroutineIDParsesHeader(t *testing.T) {
	if got := goroutineID("goroutine 42 [chan receive]:\nmain.leak()"); got != "42" {
		t.Fatalf("goroutineID = %q, want 42", got)
	}
	if got := goroutineID("not a goroutine header"); got != "" {
		t.Fatalf("goroutineID on garbage = %q, want empty", got)
	}
}

func TestBenignFiltersHarnessStacks(t *testing.T) {
	harness := "goroutine 1 [running]:\ntesting.(*M).Run(...)\n\tmain.go:1"
	if !benign(harness) {
		t.Fatal("testing.(*M).Run stack should be benign")
	}
	worker := "goroutine 9 [chan receive]:\npimcapsnet/internal/serve.(*Batcher).dispatch(...)"
	if benign(worker) {
		t.Fatal("a project worker goroutine must not be benign")
	}
}

func TestSnapshotSeesLiveGoroutine(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{})
	go func() {
		close(started)
		<-release
	}()
	<-started
	defer close(release)

	found := false
	for _, stack := range goroutineStacks() {
		if strings.Contains(stack, "TestSnapshotSeesLiveGoroutine") && !strings.Contains(stack, "testing.tRunner") {
			found = true
		}
	}
	if !found {
		t.Fatal("snapshot did not capture the blocked helper goroutine")
	}
}

func TestAwaitCatchesLeakedGoroutine(t *testing.T) {
	before := map[string]bool{}
	for id := range goroutineStacks() {
		before[id] = true
	}
	release := make(chan struct{})
	started := make(chan struct{})
	go func() { // deliberately outlives the grace window
		close(started)
		<-release
	}()
	<-started
	defer close(release)

	leaked := awaitNoNewGoroutines(before)
	if len(leaked) != 1 {
		t.Fatalf("awaitNoNewGoroutines found %d leaks, want exactly the planted one:\n%s",
			len(leaked), strings.Join(leaked, "\n\n"))
	}
	if !strings.Contains(leaked[0], "TestAwaitCatchesLeakedGoroutine") {
		t.Fatalf("leak report names the wrong goroutine:\n%s", leaked[0])
	}
}

func TestAwaitToleratesTransientGoroutine(t *testing.T) {
	before := map[string]bool{}
	for id := range goroutineStacks() {
		before[id] = true
	}
	started := make(chan struct{})
	go func() { // exits well inside the grace window
		close(started)
		time.Sleep(50 * time.Millisecond)
	}()
	<-started

	if leaked := awaitNoNewGoroutines(before); len(leaked) != 0 {
		t.Fatalf("transient goroutine reported as leak:\n%s", strings.Join(leaked, "\n\n"))
	}
}
