// Package testutil holds test-only helpers shared across the
// concurrency-heavy packages. Its centerpiece is VerifyNoLeaks, the
// runtime companion to the static goroleak analyzer: the analyzer
// proves every `go` statement carries lifetime evidence at compile
// time, and the leak net catches whatever slips past that proof —
// a Stop that never fires, a join that deadlocks under one rare
// interleaving — by diffing goroutine stacks around the whole test
// binary run.
package testutil

import (
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"
)

// leakGrace bounds how long VerifyNoLeaks waits for straggler
// goroutines to finish after the tests complete. Shutdown is
// asynchronous — a Close can return before its goroutines observe the
// stop signal — so the snapshot retries until the grace expires
// rather than failing on the first dirty diff.
const leakGrace = 2 * time.Second

// benignStackMarkers identify goroutines that outlive tests by design
// and must not count as leaks: the testing harness itself, the signal
// dispatcher, profiler machinery, and net/http's pooled keep-alive
// connection goroutines (owned by the shared http.Transport, reaped by
// its idle timeout, not by any one test).
var benignStackMarkers = []string{
	"testing.Main(",
	"testing.(*M).",
	"testing.tRunner(",
	"os/signal.signal_recv",
	"os/signal.loop",
	"runtime/pprof.",
	"runtime.ReadTrace",
	"net/http.(*persistConn).readLoop",
	"net/http.(*persistConn).writeLoop",
	"net/http.(*Transport)",
	"internal/testutil.VerifyNoLeaks",
}

// VerifyNoLeaks runs the package's tests via m.Run, then verifies the
// run left no goroutines behind. Wire it through TestMain:
//
//	func TestMain(m *testing.M) { os.Exit(testutil.VerifyNoLeaks(m)) }
//
// If m.Run fails, its exit code is returned untouched (a leak report
// would only bury the real failure). On a passing run, leftover
// goroutines — after filtering the benign harness machinery and
// retrying across a short grace window so asynchronous shutdowns can
// finish — fail the binary with exit code 1 and a dump of the leaked
// stacks.
func VerifyNoLeaks(m *testing.M) int {
	before := map[string]bool{}
	for id := range goroutineStacks() {
		before[id] = true
	}
	code := m.Run()
	if code != 0 {
		return code
	}
	leaked := awaitNoNewGoroutines(before)
	if len(leaked) == 0 {
		return 0
	}
	fmt.Fprintf(os.Stderr, "testutil: %d goroutine(s) leaked by the test run:\n\n%s\n",
		len(leaked), strings.Join(leaked, "\n\n"))
	return 1
}

// awaitNoNewGoroutines polls until every goroutine not present in
// before (and not benign) has exited, or the grace window expires; it
// returns the stacks still alive at the deadline.
func awaitNoNewGoroutines(before map[string]bool) []string {
	deadline := time.Now().Add(leakGrace)
	for {
		var leaked []string
		for id, stack := range goroutineStacks() {
			if before[id] || benign(stack) {
				continue
			}
			leaked = append(leaked, stack)
		}
		if len(leaked) == 0 || time.Now().After(deadline) {
			sort.Strings(leaked)
			return leaked
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// goroutineStacks snapshots every live goroutine's stack keyed by
// goroutine ID, so the before/after diff tracks identity (a reused
// pooled goroutine with a new stack still counts as old).
func goroutineStacks() map[string]string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, 2*len(buf))
	}
	stacks := map[string]string{}
	for _, g := range strings.Split(string(buf), "\n\n") {
		if id := goroutineID(g); id != "" {
			stacks[id] = g
		}
	}
	return stacks
}

// goroutineID extracts "N" from a "goroutine N [state]:" header, or
// "" for malformed fragments.
func goroutineID(stack string) string {
	if !strings.HasPrefix(stack, "goroutine ") {
		return ""
	}
	rest := stack[len("goroutine "):]
	if sp := strings.IndexByte(rest, ' '); sp > 0 {
		return rest[:sp]
	}
	return ""
}

// benign reports whether a goroutine's stack belongs to harness
// machinery that legitimately outlives the tests.
func benign(stack string) bool {
	for _, marker := range benignStackMarkers {
		if strings.Contains(stack, marker) {
			return true
		}
	}
	return false
}
