//pimcaps:bitexact

package hmc

import (
	"testing"
	"testing/quick"
)

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Vaults != 32 || cfg.BanksPerVault != 16 {
		t.Fatalf("geometry %d vaults × %d banks, want 32×16", cfg.Vaults, cfg.BanksPerVault)
	}
	if cfg.ExternalBW != 320e9 || cfg.InternalBW != 512e9 {
		t.Fatalf("bandwidths %v/%v", cfg.ExternalBW, cfg.InternalBW)
	}
	if cfg.ClockHz != 312.5e6 {
		t.Fatalf("clock %v", cfg.ClockHz)
	}
	if got := cfg.WithClock(625e6).ClockHz; got != 625e6 {
		t.Fatalf("WithClock = %v", got)
	}
	if cfg.VaultBW() != 512e9/32 {
		t.Fatalf("VaultBW = %v", cfg.VaultBW())
	}
	if cfg.BlocksOf(160) != 10 {
		t.Fatalf("BlocksOf(160) = %v", cfg.BlocksOf(160))
	}
}

func TestDefaultMappingInterleavesVaults(t *testing.T) {
	cfg := DefaultConfig()
	m := DefaultMapping{Cfg: cfg}
	// Consecutive sub-pages must land in consecutive vaults.
	for i := 0; i < 64; i++ {
		addr := uint64(i * cfg.SubPageBytes)
		loc := m.Locate(addr)
		if loc.Vault != i%cfg.Vaults {
			t.Fatalf("sub-page %d in vault %d, want %d", i, loc.Vault, i%cfg.Vaults)
		}
	}
	// Blocks within one sub-page stay in one vault and bank.
	first := m.Locate(0)
	for b := 0; b < cfg.SubPageBytes/cfg.BlockBytes; b++ {
		if m.Locate(uint64(b*cfg.BlockBytes)) != first {
			t.Fatal("blocks within a sub-page must not move")
		}
	}
}

func TestCustomMappingVaultLocal(t *testing.T) {
	cfg := DefaultConfig()
	m := CustomMapping{Cfg: cfg}
	// A vault's entire contiguous region maps to that vault.
	for v := 0; v < cfg.Vaults; v++ {
		base := m.VaultBase(v)
		for off := uint64(0); off < 1<<16; off += 4096 {
			if got := m.Locate(base + off).Vault; got != v {
				t.Fatalf("offset %d of vault %d region mapped to vault %d", off, v, got)
			}
		}
	}
}

func TestCustomMappingSpreadsSubPagesAcrossBanks(t *testing.T) {
	cfg := DefaultConfig()
	m := CustomMapping{Cfg: cfg}
	// With a 64-byte sub-page indicator (ind=2), consecutive 64-byte
	// items land in consecutive banks.
	const item = 64
	seen := map[int]bool{}
	for i := 0; i < cfg.BanksPerVault; i++ {
		addr := uint64(i*item) | (2 << 1)
		seen[m.Locate(addr).Bank] = true
	}
	if len(seen) != cfg.BanksPerVault {
		t.Fatalf("16 consecutive items hit only %d banks", len(seen))
	}
	// Blocks inside one item stay in one bank.
	a := m.Locate(uint64(0) | (2 << 1))
	b := m.Locate(uint64(48) | (2 << 1))
	if a.Bank != b.Bank {
		t.Fatal("blocks of one 64B item must share a bank")
	}
}

func TestCustomMappingIndicatorDecoding(t *testing.T) {
	cfg := DefaultConfig()
	m := CustomMapping{Cfg: cfg}
	for ind, want := range []int{16, 32, 64, 128, 256} {
		addr := uint64(ind) << 1
		if got := m.SubPageBytesFor(addr); got != want {
			t.Fatalf("indicator %d → %d bytes, want %d", ind, got, want)
		}
	}
	// Out-of-range indicators clamp to 256.
	if got := m.SubPageBytesFor(uint64(7) << 1); got != 256 {
		t.Fatalf("indicator 7 → %d, want 256", got)
	}
}

func TestVaultTopNaiveMappingKeepsVaultButConcentratesBanks(t *testing.T) {
	cfg := DefaultConfig()
	m := VaultTopNaiveMapping{Cfg: cfg}
	cm := CustomMapping{Cfg: cfg}
	base := cm.VaultBase(3)
	seen := map[int]bool{}
	for off := uint64(0); off < 1<<16; off += uint64(cfg.BlockBytes) {
		loc := m.Locate(base + off)
		if loc.Vault != 3 {
			t.Fatalf("naive mapping moved request out of vault 3 (got %d)", loc.Vault)
		}
		seen[loc.Bank] = true
	}
	if len(seen) != 1 {
		t.Fatalf("naive mapping spread a 64KB snippet over %d banks, expected 1", len(seen))
	}
}

func TestMappingsCoverAllVaultsAndBanks(t *testing.T) {
	cfg := DefaultConfig()
	f := func(raw uint64) bool {
		addr := raw % cfg.Capacity
		for _, m := range []Mapping{DefaultMapping{cfg}, CustomMapping{cfg}, VaultTopNaiveMapping{cfg}} {
			loc := m.Locate(addr)
			if loc.Vault < 0 || loc.Vault >= cfg.Vaults || loc.Bank < 0 || loc.Bank >= cfg.BanksPerVault {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestSimulateVaultStridedItemsLowStalls(t *testing.T) {
	cfg := DefaultConfig()
	m := CustomMapping{Cfg: cfg}
	p := StridedItemPattern(cfg, m, 0, cfg.PEsPerVault, 64, 64, m.VaultBase(0))
	r := SimulateVault(cfg, p)
	if r.Remote != 0 {
		t.Fatalf("strided pattern produced %d remote requests", r.Remote)
	}
	if r.StallFraction() > 0.15 {
		t.Fatalf("custom mapping stall fraction %.2f, want near zero", r.StallFraction())
	}
	// Near issue-limited throughput: ~IssueCycles per request.
	if cpr := r.CyclesPerRequest(); cpr > float64(cfg.IssueCycles)+0.5 {
		t.Fatalf("custom mapping cycles/request %.2f, want ≈%d", cpr, cfg.IssueCycles)
	}
}

func TestSimulateVaultNaiveMappingSerializes(t *testing.T) {
	cfg := DefaultConfig()
	cm := CustomMapping{Cfg: cfg}
	naive := VaultTopNaiveMapping{Cfg: cfg}
	p := SnippetPattern(cfg, naive, 0, cfg.PEsPerVault, 256, cm.VaultBase(0), cfg.SubPageBytes)
	r := SimulateVault(cfg, p)
	if r.Remote != 0 {
		t.Fatalf("naive snippet pattern produced %d remote requests", r.Remote)
	}
	// All PEs collide in one bank: requests serialize at
	// BankBusyCycles each, so stalls dominate (the PIM-Inter VRS).
	if r.StallFraction() < 0.5 {
		t.Fatalf("naive mapping stall fraction %.2f, expected bank-conflict dominated", r.StallFraction())
	}
	if cpr := r.CyclesPerRequest(); cpr < float64(cfg.BankBusyCycles)*0.9 {
		t.Fatalf("naive mapping cycles/request %.2f, want ≈%d", cpr, cfg.BankBusyCycles)
	}
}

func TestSimulateVaultDefaultMappingMostlyRemote(t *testing.T) {
	cfg := DefaultConfig()
	m := DefaultMapping{Cfg: cfg}
	p := SnippetPattern(cfg, m, 0, cfg.PEsPerVault, 256, 0, cfg.SubPageBytes)
	r := SimulateVault(cfg, p)
	total := float64(r.Local + r.Remote)
	if float64(r.Remote)/total < 0.9 {
		t.Fatalf("default interleave should send ~31/32 of requests remote, got %.2f", float64(r.Remote)/total)
	}
}

func TestSimulateVaultEmptyPattern(t *testing.T) {
	cfg := DefaultConfig()
	r := SimulateVault(cfg, AccessPattern{})
	if r.Cycles != 0 || r.Local != 0 {
		t.Fatalf("empty pattern simulated something: %+v", r)
	}
}

func TestSimulateVaultConservation(t *testing.T) {
	cfg := DefaultConfig()
	m := CustomMapping{Cfg: cfg}
	p := StridedItemPattern(cfg, m, 0, 4, 32, 64, m.VaultBase(0))
	r := SimulateVault(cfg, p)
	if r.Local+r.Remote != uint64(4*p.ReqsPerPE/1)*1 {
		// ReqsPerPE already includes blocksPerItem; total must match.
		t.Fatalf("requests not conserved: local %d remote %d, want %d", r.Local, r.Remote, 4*p.ReqsPerPE)
	}
}

func TestCrossbarTimes(t *testing.T) {
	cfg := DefaultConfig()
	x := Crossbar{Cfg: cfg}
	// Gather is port-limited: 16 KB + 100 packets × 16 B over 16 GB/s.
	want := (16384.0 + 1600) / (512e9 / 32)
	if got := x.GatherTime(16384, 100); got != want {
		t.Fatalf("GatherTime = %v, want %v", got, want)
	}
	if x.ScatterTime(16384, 100) != want {
		t.Fatal("ScatterTime must equal GatherTime for same payload")
	}
	if x.UniformTime(16384, 100) >= want {
		t.Fatal("uniform all-to-all must beat all-to-one for the same bytes")
	}
	if x.HostTransferTime(320e9) != 1.0 {
		t.Fatalf("HostTransferTime(320GB) = %v, want 1s", x.HostTransferTime(320e9))
	}
	// Remote block access pays per-block packet overhead and switch
	// congestion: must cost more than twice the raw payload time.
	blocks := 1000.0
	raw := blocks * 16 / cfg.InternalBW
	if x.RemoteAccessTime(blocks) < 2*raw {
		t.Fatal("remote access should be substantially slower than raw payload streaming")
	}
}

func BenchmarkSimulateVaultCustom(b *testing.B) {
	cfg := DefaultConfig()
	m := CustomMapping{Cfg: cfg}
	p := StridedItemPattern(cfg, m, 0, cfg.PEsPerVault, 64, 64, m.VaultBase(0))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SimulateVault(cfg, p)
	}
}
