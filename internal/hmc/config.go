// Package hmc models the Hybrid Memory Cube that hosts PIM-CapsNet's
// in-memory accelerators: the vault/bank geometry of the HMC 2.1
// specification, the default and customized block-address mappings of
// Fig. 13, a discrete vault-level simulator that exposes bank
// conflicts and vault request stalls (VRS), and a crossbar model for
// packetized inter-vault transfers. The contention behaviour that
// Figs. 16a attributes the design wins to (crossbar stalls for
// PIM-Intra, VRS for PIM-Inter) emerges from simulated request
// streams rather than closed forms.
package hmc

// Config describes an HMC cube (Table 4: 8 GB, 32 vaults, 16 banks per
// vault, 320 GB/s external, 512 GB/s internal).
type Config struct {
	Vaults        int
	BanksPerVault int
	// Capacity in bytes.
	Capacity uint64
	// ExternalBW is the SerDes link bandwidth to the host (bytes/s),
	// InternalBW the aggregate TSV bandwidth (bytes/s).
	ExternalBW, InternalBW float64
	// ClockHz is the logic-layer clock the vault controller and PEs
	// run at (312.5 MHz default, scalable for Fig. 18).
	ClockHz float64
	// BlockBytes is the memory access granularity (16 B per the
	// spec); SubPageBytes is the MAX_BLOCK unit, set per request by
	// the indicator bits of the custom mapping (32–256 B).
	BlockBytes   int
	SubPageBytes int
	// BankBusyCycles is how long one block access occupies a DRAM
	// bank (logic-layer cycles).
	BankBusyCycles int
	// IssueCycles is the sub-memory controller's command+data cadence:
	// one request can issue every IssueCycles cycles.
	IssueCycles int
	// PacketOverheadBytes is the head+tail overhead of one
	// inter-vault packet (SIZE_pkt in Table 3).
	PacketOverheadBytes int
	// PEsPerVault is the number of processing elements integrated
	// into each vault's logic layer (§5.2.1).
	PEsPerVault int
}

// DefaultConfig returns the paper's HMC configuration.
func DefaultConfig() Config {
	return Config{
		Vaults:              32,
		BanksPerVault:       16,
		Capacity:            8 << 30,
		ExternalBW:          320e9,
		InternalBW:          512e9,
		ClockHz:             312.5e6,
		BlockBytes:          16,
		SubPageBytes:        256,
		BankBusyCycles:      8,
		IssueCycles:         3,
		PacketOverheadBytes: 16,
		PEsPerVault:         16,
	}
}

// WithClock returns a copy of c at a different logic-layer frequency
// (the Fig. 18 sweep: 312.5, 625, 937.5 MHz).
func (c Config) WithClock(hz float64) Config {
	c.ClockHz = hz
	return c
}

// VaultBW returns the per-vault TSV bandwidth in bytes/s.
func (c Config) VaultBW() float64 { return c.InternalBW / float64(c.Vaults) }

// BlocksOf returns how many blocks cover n bytes.
func (c Config) BlocksOf(bytes float64) float64 {
	return bytes / float64(c.BlockBytes)
}
