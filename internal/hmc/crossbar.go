package hmc

import "math/bits"

// VaultTopNaiveMapping is the intermediate mapping of the PIM-Inter
// design point: the vault ID is moved to the highest block-address
// field (so snippets stay vault-local, §5.3.1's first step) but the
// bank field stays high within the vault, so a vault's contiguous
// snippet region falls into one bank and concurrent PE requests
// serialize — the bank-conflict problem the custom sub-page mapping
// then solves.
type VaultTopNaiveMapping struct {
	Cfg Config
}

// Name implements Mapping.
func (VaultTopNaiveMapping) Name() string { return "vault-top-naive-banks" }

// Locate implements Mapping.
func (m VaultTopNaiveMapping) Locate(addr uint64) Location {
	cfg := m.Cfg
	block := addr >> uint(bits.TrailingZeros(uint(cfg.BlockBytes)))
	capBlocks := cfg.Capacity / uint64(cfg.BlockBytes)
	totalBits := uint(bits.Len64(capBlocks - 1))
	vaultBits := uint(bits.TrailingZeros(uint(cfg.Vaults)))
	bankBits := uint(bits.TrailingZeros(uint(cfg.BanksPerVault)))
	vault := int((block >> (totalBits - vaultBits)) & uint64(cfg.Vaults-1))
	bank := int((block >> (totalBits - vaultBits - bankBits)) & uint64(cfg.BanksPerVault-1))
	return Location{Vault: vault, Bank: bank}
}

var _ Mapping = VaultTopNaiveMapping{}

// Crossbar models the logic-layer switch connecting vaults to each
// other and to the SerDes links. Transfers are packetized; each packet
// pays PacketOverheadBytes of head/tail. Ports are the bottleneck:
// each vault port sustains VaultBW, the switch in aggregate sustains
// InternalBW.
type Crossbar struct {
	Cfg Config
}

// packetBytes returns wire bytes for a payload split into packets of
// at most payloadPerPacket bytes.
func (x Crossbar) packetBytes(payload, packets float64) float64 {
	return payload + packets*float64(x.Cfg.PacketOverheadBytes)
}

// GatherTime is an all-to-one transfer (e.g. collecting pre-aggregated
// b_ij partials into one vault): the destination port serializes every
// source's packets.
func (x Crossbar) GatherTime(payloadBytes, packets float64) float64 {
	return x.packetBytes(payloadBytes, packets) / x.Cfg.VaultBW()
}

// ScatterTime is a one-to-all transfer (e.g. broadcasting updated
// c_ij): the source port serializes.
func (x Crossbar) ScatterTime(payloadBytes, packets float64) float64 {
	return x.packetBytes(payloadBytes, packets) / x.Cfg.VaultBW()
}

// UniformTime is an all-to-all transfer with balanced pairs, limited
// by aggregate switch bandwidth.
func (x Crossbar) UniformTime(payloadBytes, packets float64) float64 {
	return x.packetBytes(payloadBytes, packets) / x.Cfg.InternalBW
}

// RemoteAccessTime is the crossbar cost of servicing block requests
// that missed their local vault (the PIM-Intra failure mode: compute
// sits in one place while data interleaves across all vaults, so
// almost every access crosses the switch). Concurrent remote traffic
// from all vaults' PEs congests the switch: effective bandwidth is the
// aggregate internal bandwidth derated by the congestion factor of
// fine-grained (block-sized) packets.
func (x Crossbar) RemoteAccessTime(blocks float64) float64 {
	payload := blocks * float64(x.Cfg.BlockBytes)
	wire := x.packetBytes(payload, blocks) // one packet per block
	// Fine-grained all-to-all traffic achieves roughly half the
	// switch's aggregate bandwidth (head-of-line blocking).
	return wire / (0.5 * x.Cfg.InternalBW)
}

// HostTransferTime is the cost of moving bytes between the host GPU
// and the cube over the external SerDes links.
func (x Crossbar) HostTransferTime(bytes float64) float64 {
	return bytes / x.Cfg.ExternalBW
}
