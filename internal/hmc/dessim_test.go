package hmc

import (
	"math"
	"testing"
)

func TestDESCustomMappingIssueLimited(t *testing.T) {
	cfg := DefaultConfig()
	m := CustomMapping{Cfg: cfg}
	p := StridedItemPattern(cfg, m, 0, cfg.PEsPerVault, 64, 64, m.VaultBase(0))
	r := SimulateVaultDES(cfg, p)
	if r.Remote != 0 {
		t.Fatalf("%d remote requests", r.Remote)
	}
	cpr := r.CyclesPerRequest()
	if math.Abs(cpr-float64(cfg.IssueCycles)) > 0.5 {
		t.Fatalf("custom mapping cycles/request %.2f, want ≈%d (issue-limited)", cpr, cfg.IssueCycles)
	}
	if r.ControllerUtil < 0.9 {
		t.Fatalf("controller utilization %.2f, want ≈1 when issue-limited", r.ControllerUtil)
	}
	if r.PeakBankQueue > 3 {
		t.Fatalf("peak bank queue %d under the contention-free mapping", r.PeakBankQueue)
	}
}

func TestDESNaiveMappingBankLimited(t *testing.T) {
	cfg := DefaultConfig()
	naive := VaultTopNaiveMapping{Cfg: cfg}
	base := CustomMapping{Cfg: cfg}.VaultBase(0)
	p := SnippetPattern(cfg, naive, 0, cfg.PEsPerVault, 256, base, cfg.SubPageBytes)
	r := SimulateVaultDES(cfg, p)
	cpr := r.CyclesPerRequest()
	if math.Abs(cpr-float64(cfg.BankBusyCycles)) > 1 {
		t.Fatalf("naive mapping cycles/request %.2f, want ≈%d (bank-limited)", cpr, cfg.BankBusyCycles)
	}
	// One bank saturated, the rest idle.
	saturated := 0
	for _, u := range r.BankUtil {
		if u > 0.9 {
			saturated++
		}
	}
	if saturated != 1 {
		t.Fatalf("%d saturated banks, want exactly 1 under the naive mapping", saturated)
	}
	if r.MeanBankWait <= 0 {
		t.Fatal("bank-limited pattern must queue")
	}
	if r.PeakBankQueue < 5 {
		t.Fatalf("peak bank queue %d suspiciously shallow for a serialized pattern", r.PeakBankQueue)
	}
}

// TestDESCrossValidatesWindowSimulator is the two-simulator agreement
// check: the fast window model (SimulateVault) and the event-driven
// model (SimulateVaultDES) must report the same throughput within 25%
// for both the optimized and the pathological mapping.
func TestDESCrossValidatesWindowSimulator(t *testing.T) {
	cfg := DefaultConfig()
	cm := CustomMapping{Cfg: cfg}

	cases := []struct {
		name string
		p    AccessPattern
	}{
		{"custom-strided", StridedItemPattern(cfg, cm, 0, cfg.PEsPerVault, 64, 64, cm.VaultBase(0))},
		{"naive-snippets", SnippetPattern(cfg, VaultTopNaiveMapping{Cfg: cfg}, 0, cfg.PEsPerVault, 256, cm.VaultBase(0), cfg.SubPageBytes)},
	}
	for _, c := range cases {
		window := SimulateVault(cfg, c.p).CyclesPerRequest()
		detailed := SimulateVaultDES(cfg, c.p).CyclesPerRequest()
		ratio := window / detailed
		if ratio < 0.75 || ratio > 1.33 {
			t.Fatalf("%s: window %.2f vs DES %.2f cycles/request (ratio %.2f)", c.name, window, detailed, ratio)
		}
	}
}

func TestDESEmptyPattern(t *testing.T) {
	r := SimulateVaultDES(DefaultConfig(), AccessPattern{})
	if r.Cycles != 0 || r.Local != 0 {
		t.Fatalf("empty pattern simulated something: %+v", r)
	}
}

func TestDESRemoteFiltering(t *testing.T) {
	cfg := DefaultConfig()
	m := DefaultMapping{Cfg: cfg}
	p := SnippetPattern(cfg, m, 0, cfg.PEsPerVault, 64, 0, cfg.SubPageBytes)
	r := SimulateVaultDES(cfg, p)
	if r.Remote == 0 {
		t.Fatal("default interleave should produce remote requests")
	}
	if r.Local+r.Remote != uint64(cfg.PEsPerVault*p.ReqsPerPE) {
		t.Fatal("request conservation violated")
	}
}
