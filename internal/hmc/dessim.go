package hmc

import (
	"fmt"

	"pimcapsnet/internal/des"
)

// DetailedVaultResult is the event-driven counterpart of VaultResult,
// with queueing statistics the cycle-window model cannot expose.
type DetailedVaultResult struct {
	// Cycles is the makespan in logic-layer cycles.
	Cycles float64
	// Local/Remote request counts (remote requests leave for the
	// crossbar immediately, as in SimulateVault).
	Local, Remote uint64
	// ControllerUtil is the sub-memory controller's busy fraction;
	// MeanBankWait the average cycles a request queued at its bank.
	ControllerUtil float64
	MeanBankWait   float64
	// PeakBankQueue is the deepest bank queue observed — the VRS
	// pressure signal the paper's custom mapping removes.
	PeakBankQueue int
	// BankUtil is the per-bank busy fraction.
	BankUtil []float64
}

// CyclesPerRequest returns makespan per local request.
func (r DetailedVaultResult) CyclesPerRequest() float64 {
	if r.Local == 0 {
		return 0
	}
	return r.Cycles / float64(r.Local)
}

// SimulateVaultDES runs an access pattern through an event-driven
// vault model: the sub-memory controller is a capacity-1 server
// holding each request for IssueCycles; every DRAM bank is a
// capacity-1 server holding each granted request for BankBusyCycles.
// A PE issues its requests in order — the next request enters the
// controller as soon as the previous one has issued (requests
// pipeline into the banks, matching the window model's semantics).
//
// The model is the high-fidelity cross-check of SimulateVault: both
// must agree on throughput for the contention-free custom mapping
// (≈ IssueCycles per request) and the serialized naive mapping
// (≈ BankBusyCycles per request); see the cross-validation tests.
func SimulateVaultDES(cfg Config, p AccessPattern) DetailedVaultResult {
	if p.PEs <= 0 || p.ReqsPerPE <= 0 {
		return DetailedVaultResult{}
	}
	eng := des.New()
	controller := des.NewResource(eng, "controller", 1)
	banks := make([]*des.Resource, cfg.BanksPerVault)
	for i := range banks {
		banks[i] = des.NewResource(eng, fmt.Sprintf("bank%d", i), 1)
	}
	issue := float64(cfg.IssueCycles)
	if issue < 1 {
		issue = 1
	}
	busy := float64(cfg.BankBusyCycles)

	var res DetailedVaultResult

	// Pre-resolve the request streams.
	streams := make([][]int, p.PEs) // bank per request, -1 remote
	for pe := 0; pe < p.PEs; pe++ {
		streams[pe] = make([]int, p.ReqsPerPE)
		for i := 0; i < p.ReqsPerPE; i++ {
			loc := p.Mapping.Locate(p.AddrFor(pe, i))
			if p.Vault >= 0 && loc.Vault != p.Vault {
				streams[pe][i] = -1
				res.Remote++
			} else {
				streams[pe][i] = loc.Bank
				res.Local++
			}
		}
	}

	// Each PE is a sequential issuer: request i+1 enters the
	// controller queue once request i has finished its issue phase.
	var issueNext func(pe, i int)
	issueNext = func(pe, i int) {
		for i < p.ReqsPerPE && streams[pe][i] == -1 {
			i++ // remote: hand to crossbar, no vault resources
		}
		if i >= p.ReqsPerPE {
			return
		}
		bank := streams[pe][i]
		controller.Acquire(func(releaseCtl func()) {
			eng.After(issue, func() {
				releaseCtl()
				// The issued request occupies its bank; the PE moves on.
				banks[bank].Acquire(func(releaseBank func()) {
					eng.After(busy, releaseBank)
				})
				issueNext(pe, i+1)
			})
		})
	}
	for pe := 0; pe < p.PEs; pe++ {
		issueNext(pe, 0)
	}
	res.Cycles = eng.Run()
	res.ControllerUtil = controller.Utilization()
	var wait float64
	var served uint64
	res.BankUtil = make([]float64, len(banks))
	for i, b := range banks {
		wait += b.TotalWait
		served += b.Served
		res.BankUtil[i] = b.Utilization()
		if b.PeakQueue > res.PeakBankQueue {
			res.PeakBankQueue = b.PeakQueue
		}
	}
	if served > 0 {
		res.MeanBankWait = wait / float64(served)
	}
	return res
}
