package hmc

// AccessPattern describes the block-request streams a vault's PEs
// issue during one compute phase. AddrFor returns the byte address of
// the i-th request of PE p; the simulator maps it to a bank.
type AccessPattern struct {
	PEs       int
	ReqsPerPE int
	AddrFor   func(pe, i int) uint64
	Mapping   Mapping
	// Vault filters requests: only those mapped to this vault are
	// serviced locally, the rest are counted as remote (they must
	// cross the crossbar). Use -1 to treat every request as local.
	Vault int
}

// VaultResult summarizes a simulated request window.
type VaultResult struct {
	// Cycles is the wall time of the window in logic-layer cycles.
	Cycles uint64
	// Local is the number of requests serviced by this vault's banks,
	// Remote the number that mapped to other vaults.
	Local, Remote uint64
	// StallCycles counts cycles where requests were pending but none
	// could issue because every target bank was busy — the paper's
	// vault request stalls (VRS).
	StallCycles uint64
}

// StallFraction returns VRS cycles as a fraction of the window.
func (r VaultResult) StallFraction() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.StallCycles) / float64(r.Cycles)
}

// CyclesPerRequest returns the average service cost of a local
// request, the throughput figure core scales full workloads by.
func (r VaultResult) CyclesPerRequest() float64 {
	if r.Local == 0 {
		return 0
	}
	return float64(r.Cycles) / float64(r.Local)
}

// SimulateVault runs the access pattern through one vault's
// sub-memory controller and banks: each cycle the controller issues at
// most one request (round-robin over PEs) whose target bank is free; a
// bank stays busy for BankBusyCycles per block. Cycles with pending
// requests but no issuable one are vault request stalls. The model is
// deliberately small — it is run on windows of a few thousand
// requests to extract throughput and VRS coefficients that core
// scales to full workloads.
func SimulateVault(cfg Config, p AccessPattern) VaultResult {
	if p.PEs <= 0 || p.ReqsPerPE <= 0 {
		return VaultResult{}
	}
	type peState struct {
		next int // next request index
	}
	pes := make([]peState, p.PEs)
	bankFree := make([]uint64, cfg.BanksPerVault)
	banks := make([][]int, p.PEs) // precomputed bank per request, -1 = remote
	var res VaultResult
	for pe := 0; pe < p.PEs; pe++ {
		banks[pe] = make([]int, p.ReqsPerPE)
		for i := 0; i < p.ReqsPerPE; i++ {
			loc := p.Mapping.Locate(p.AddrFor(pe, i))
			if p.Vault >= 0 && loc.Vault != p.Vault {
				banks[pe][i] = -1
				res.Remote++
			} else {
				banks[pe][i] = loc.Bank
			}
		}
	}

	issue := uint64(cfg.IssueCycles)
	if issue < 1 {
		issue = 1
	}
	total := uint64(p.PEs) * uint64(p.ReqsPerPE)
	done := res.Remote // remote requests leave immediately for the crossbar
	var cycle, nextIssue uint64
	rr := 0
	for done < total {
		// Skip remote requests at stream heads — they are handed to
		// the crossbar without occupying a bank.
		for pe := range pes {
			for pes[pe].next < p.ReqsPerPE && banks[pe][pes[pe].next] == -1 {
				pes[pe].next++
			}
		}
		issued := false
		pending := false
		if cycle < nextIssue {
			// Controller mid-transfer; not a bank-conflict stall.
			cycle++
			continue
		}
		for k := 0; k < p.PEs; k++ {
			pe := (rr + k) % p.PEs
			n := pes[pe].next
			if n >= p.ReqsPerPE {
				continue
			}
			pending = true
			b := banks[pe][n]
			if bankFree[b] <= cycle {
				bankFree[b] = cycle + uint64(cfg.BankBusyCycles)
				nextIssue = cycle + issue
				pes[pe].next++
				res.Local++
				done++
				rr = pe + 1
				issued = true
				break
			}
		}
		if !issued && pending {
			res.StallCycles++
		}
		cycle++
		if !pending {
			// Only remote requests remained; the window is over.
			break
		}
	}
	// Drain: the last issued request still occupies its bank.
	res.Cycles = cycle + uint64(cfg.BankBusyCycles)
	return res
}

// SnippetPattern lays PE snippets out contiguously: PE p owns a
// contiguous chunk of chunkBytes starting at base + p·chunkBytes and
// streams it block by block. Under the default mapping all chunks of
// a vault collide in few banks; under the custom mapping consecutive
// sub-pages interleave across banks. The subPageBytes argument is
// encoded into the indicator bits the custom mapping reads.
func SnippetPattern(cfg Config, m Mapping, vault, pes, reqsPerPE int, base uint64, subPageBytes int) AccessPattern {
	ind := uint64(0)
	for s := cfg.BlockBytes; s < subPageBytes; s <<= 1 {
		ind++
	}
	chunk := uint64(reqsPerPE * cfg.BlockBytes)
	return AccessPattern{
		PEs:       pes,
		ReqsPerPE: reqsPerPE,
		Mapping:   m,
		Vault:     vault,
		AddrFor: func(pe, i int) uint64 {
			addr := base + uint64(pe)*chunk + uint64(i*cfg.BlockBytes)
			return (addr &^ 0xF) | (ind << 1)
		},
	}
}

// StridedItemPattern assigns work items round-robin to PEs: item j
// (itemBytes contiguous bytes, one per capsule pair or vector) is
// processed by PE j mod PEs. With the custom mapping's sub-page size
// set to itemBytes, the 16 concurrently-processed items are 16
// consecutive sub-pages and therefore hit 16 different banks — the
// contention-free layout of §5.3.1.
func StridedItemPattern(cfg Config, m Mapping, vault, pes, itemsPerPE, itemBytes int, base uint64) AccessPattern {
	blocksPerItem := (itemBytes + cfg.BlockBytes - 1) / cfg.BlockBytes
	if blocksPerItem < 1 {
		blocksPerItem = 1
	}
	ind := uint64(0)
	for s := cfg.BlockBytes; s < itemBytes && ind < 4; s <<= 1 {
		ind++
	}
	return AccessPattern{
		PEs:       pes,
		ReqsPerPE: itemsPerPE * blocksPerItem,
		Mapping:   m,
		Vault:     vault,
		AddrFor: func(pe, i int) uint64 {
			item := i / blocksPerItem
			blk := i % blocksPerItem
			globalItem := item*pes + pe
			addr := base + uint64(globalItem*itemBytes) + uint64(blk*cfg.BlockBytes)
			return (addr &^ 0xF) | (ind << 1)
		},
	}
}
