package hmc

import (
	"fmt"
	"math/bits"
)

// Location identifies where a block lives inside the cube.
type Location struct {
	Vault, Bank int
}

// Mapping translates a byte address to its vault and bank.
type Mapping interface {
	Name() string
	Locate(addr uint64) Location
}

// DefaultMapping is the HMC Gen3 sequential-interleave mapping of
// Fig. 13a: the lowest 4 bits address within a block; block addresses
// are composed (low → high) of the block-in-sub-page field, the 5-bit
// vault ID, the 4-bit bank ID and the sub-page ID. Consecutive
// sub-pages therefore spread across vaults first — good for host
// bandwidth, terrible for keeping a PE's working set vault-local.
type DefaultMapping struct {
	Cfg Config
}

// Name implements Mapping.
func (DefaultMapping) Name() string { return "default-sequential-interleave" }

// Locate implements Mapping.
func (m DefaultMapping) Locate(addr uint64) Location {
	cfg := m.Cfg
	block := addr >> uint(bits.TrailingZeros(uint(cfg.BlockBytes)))
	spBits := uint(bits.TrailingZeros(uint(cfg.SubPageBytes / cfg.BlockBytes)))
	vaultBits := uint(bits.TrailingZeros(uint(cfg.Vaults)))
	vault := int((block >> spBits) & uint64(cfg.Vaults-1))
	bank := int((block >> (spBits + vaultBits)) & uint64(cfg.BanksPerVault-1))
	return Location{Vault: vault, Bank: bank}
}

// CustomMapping is the paper's mapping of Fig. 13b: the vault ID moves
// to the highest block-address field so that consecutive data stays in
// one vault (inter-vault requirement, §5.3.1), consecutive sub-pages
// spread across the 16 banks inside the vault (so concurrent PE
// requests hit different banks), and the sub-page size is chosen per
// request by indicator bits 1–3 of the otherwise-ignored low nibble so
// one PE's consecutive blocks stay within a single bank.
type CustomMapping struct {
	Cfg Config
}

// Name implements Mapping.
func (CustomMapping) Name() string { return "pim-capsnet-custom" }

// SubPageBytesFor decodes the indicator bits (bits 1–3) of addr:
// values 0–4 select 16, 32, 64, 128 or 256-byte sub-pages.
func (m CustomMapping) SubPageBytesFor(addr uint64) int {
	ind := int((addr >> 1) & 0x7)
	if ind > 4 {
		ind = 4
	}
	return m.Cfg.BlockBytes << uint(ind)
}

// Locate implements Mapping.
func (m CustomMapping) Locate(addr uint64) Location {
	cfg := m.Cfg
	block := addr >> uint(bits.TrailingZeros(uint(cfg.BlockBytes)))
	spBytes := m.SubPageBytesFor(addr)
	spBits := uint(bits.TrailingZeros(uint(spBytes / cfg.BlockBytes)))
	vaultBits := uint(bits.TrailingZeros(uint(cfg.Vaults)))

	// Vault ID occupies the highest field of the block address.
	capBlocks := cfg.Capacity / uint64(cfg.BlockBytes)
	totalBits := uint(bits.Len64(capBlocks - 1))
	vault := int((block >> (totalBits - vaultBits)) & uint64(cfg.Vaults-1))
	bank := int((block >> spBits) & uint64(cfg.BanksPerVault-1))
	return Location{Vault: vault, Bank: bank}
}

// VaultBase returns the lowest byte address mapped to the given vault
// under the custom mapping — useful for laying out one vault's snippet
// data.
func (m CustomMapping) VaultBase(vault int) uint64 {
	cfg := m.Cfg
	capBlocks := cfg.Capacity / uint64(cfg.BlockBytes)
	totalBits := uint(bits.Len64(capBlocks - 1))
	vaultBits := uint(bits.TrailingZeros(uint(cfg.Vaults)))
	blockBits := uint(bits.TrailingZeros(uint(cfg.BlockBytes)))
	return uint64(vault) << (totalBits - vaultBits + blockBits)
}

var (
	_ Mapping = DefaultMapping{}
	_ Mapping = CustomMapping{}
)

func init() {
	// The mappings rely on power-of-two geometry; fail fast if the
	// default config ever drifts.
	cfg := DefaultConfig()
	for _, v := range []int{cfg.Vaults, cfg.BanksPerVault, cfg.BlockBytes, cfg.SubPageBytes} {
		if v&(v-1) != 0 {
			panic(fmt.Sprintf("hmc: geometry value %d must be a power of two", v))
		}
	}
}
