package hmc_test

import (
	"fmt"

	"pimcapsnet/internal/hmc"
)

// ExampleCustomMapping shows the Fig. 13b property: consecutive data
// stays vault-local while consecutive sub-pages spread across banks.
func ExampleCustomMapping() {
	cfg := hmc.DefaultConfig()
	m := hmc.CustomMapping{Cfg: cfg}
	base := m.VaultBase(5)
	a := m.Locate(base | 2<<1)        // 64-byte sub-page indicator
	b := m.Locate((base + 64) | 2<<1) // next 64-byte item
	fmt.Println("same vault:", a.Vault == b.Vault)
	fmt.Println("different banks:", a.Bank != b.Bank)
	// Output:
	// same vault: true
	// different banks: true
}

// ExampleSimulateVault contrasts the two address mappings' bank
// behaviour for the same request stream shape.
func ExampleSimulateVault() {
	cfg := hmc.DefaultConfig()
	custom := hmc.CustomMapping{Cfg: cfg}
	naive := hmc.VaultTopNaiveMapping{Cfg: cfg}

	good := hmc.SimulateVault(cfg, hmc.StridedItemPattern(cfg, custom, 0, 16, 64, 64, custom.VaultBase(0)))
	bad := hmc.SimulateVault(cfg, hmc.SnippetPattern(cfg, naive, 0, 16, 256, custom.VaultBase(0), cfg.SubPageBytes))
	fmt.Printf("custom mapping stalls < 10%%: %v\n", good.StallFraction() < 0.1)
	fmt.Printf("naive mapping stalls > 50%%: %v\n", bad.StallFraction() > 0.5)
	// Output:
	// custom mapping stalls < 10%: true
	// naive mapping stalls > 50%: true
}
