//pimcaps:bitexact

package sched

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestPolicyStrings(t *testing.T) {
	if RMAS.String() != "RMAS" || PIMFirst.String() != "RMAS-PIM" || GPUFirst.String() != "RMAS-GPU" {
		t.Fatal("policy names wrong")
	}
	if !strings.HasPrefix(Policy(9).String(), "Policy(") {
		t.Fatal("unknown policy should render numerically")
	}
}

func TestKappaEndpoints(t *testing.T) {
	c := Contention{NMax: 8, Q: 4, GammaV: 1, GammaH: 2}
	// nh = nmax: PIM pays γv·nmax·Q, GPU pays γh.
	if got := c.Kappa(8); got != 1*8*4+2*8/8.0 {
		t.Fatalf("Kappa(8) = %v", got)
	}
	// nh = 0: GPU waits out the full PE queues.
	if got := c.Kappa(0); got != 2*8*4.0 {
		t.Fatalf("Kappa(0) = %v", got)
	}
}

func TestRMASBeatsNaivePolicies(t *testing.T) {
	// Eq. 15's whole point: the optimal n_h never does worse than
	// either endpoint.
	f := func(nmax uint8, q, gv, gh float64) bool {
		c := Contention{
			NMax:   int(nmax%31) + 1,
			Q:      1 + abs(q, 64),
			GammaV: 0.1 + abs(gv, 10),
			GammaH: 0.1 + abs(gh, 10),
		}
		opt := Arbitrate(RMAS, c).Kappa
		return opt <= Arbitrate(PIMFirst, c).Kappa+1e-9 && opt <= Arbitrate(GPUFirst, c).Kappa+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func abs(x, mod float64) float64 {
	if x < 0 {
		x = -x
	}
	for x >= mod {
		x /= 2
	}
	if x != x { // NaN
		return 1
	}
	return x
}

func TestOptimalNHMatchesClosedForm(t *testing.T) {
	// √(nmax·γh/(Q·γv)) = √(16·4/(4·1)) = 4.
	c := Contention{NMax: 16, Q: 4, GammaV: 1, GammaH: 4}
	d := Arbitrate(RMAS, c)
	if d.NH != 4 {
		t.Fatalf("optimal n_h = %d, want 4", d.NH)
	}
	if d.Kappa != c.Kappa(4) {
		t.Fatal("decision kappa inconsistent")
	}
}

func TestArbitrateDelaysAttribution(t *testing.T) {
	c := Contention{NMax: 8, Q: 2, GammaV: 1, GammaH: 1}
	gpuFirst := Arbitrate(GPUFirst, c)
	if gpuFirst.NH != 8 || gpuFirst.PIMDelay == 0 || gpuFirst.GPUDelay != 1 {
		t.Fatalf("GPUFirst decision %+v", gpuFirst)
	}
	pimFirst := Arbitrate(PIMFirst, c)
	if pimFirst.NH != 0 || pimFirst.PIMDelay != 0 || pimFirst.GPUDelay == 0 {
		t.Fatalf("PIMFirst decision %+v", pimFirst)
	}
	rmas := Arbitrate(RMAS, c)
	if rmas.Kappa > gpuFirst.Kappa || rmas.Kappa > pimFirst.Kappa {
		t.Fatal("RMAS must not lose to either endpoint")
	}
}

func TestArbitrateDegenerate(t *testing.T) {
	d := Arbitrate(RMAS, Contention{})
	if d.NH != 0 || d.Kappa != 0 {
		t.Fatalf("degenerate contention decision %+v", d)
	}
}

func TestHigherQueuePushesGPUPriorityDown(t *testing.T) {
	// More queued PE work makes granting the GPU priority costlier:
	// n_h must not increase with Q.
	base := Contention{NMax: 16, GammaV: 1, GammaH: 4}
	prev := 17
	for _, q := range []float64{0.5, 1, 2, 4, 8, 16, 64} {
		c := base
		c.Q = q
		nh := Arbitrate(RMAS, c).NH
		if nh > prev {
			t.Fatalf("n_h grew from %d to %d as Q rose to %v", prev, nh, q)
		}
		prev = nh
	}
}
