// Package sched implements the runtime memory access scheduler (RMAS)
// of paper §5.3.2: when the host GPU's Conv/FC traffic and the vault
// PEs' routing traffic target the same vaults, RMAS decides how many
// of the targeted vaults (n_h of n_max) grant the GPU priority by
// minimizing the overhead function of Eq. 15:
//
//	κ = γ_v·n_h·Q + γ_h·n_max/n_h
//
// whose continuous minimum is n_h = √(n_max·γ_h/(Q·γ_v)), clamped to
// [0, n_max]. The naive policies of the evaluation (always-PIM-first,
// always-GPU-first) are the two endpoints.
package sched

import (
	"fmt"
	"math"
)

// Policy selects the arbitration strategy.
type Policy int

// The three policies compared in Fig. 17.
const (
	// RMAS minimizes Eq. 15.
	RMAS Policy = iota
	// PIMFirst always grants vault PEs priority (RMAS-PIM).
	PIMFirst
	// GPUFirst always grants the host GPU priority (RMAS-GPU).
	GPUFirst
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case RMAS:
		return "RMAS"
	case PIMFirst:
		return "RMAS-PIM"
	case GPUFirst:
		return "RMAS-GPU"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// Contention describes one arbitration decision's inputs.
type Contention struct {
	// NMax is the number of vaults the host operation requests
	// (consecutive data stays in few vaults under the custom
	// mapping).
	NMax int
	// Q is the average number of queued PE requests in the targeted
	// vaults.
	Q float64
	// GammaV and GammaH are the impact factors of the issued HMC and
	// host operations (memory-intensive operations are more
	// bandwidth-sensitive and get larger γ).
	GammaV, GammaH float64
}

// Kappa evaluates Eq. 15 for a given n_h. n_h = 0 means every target
// vault drains its PE queue before serving the GPU, so the host
// impact becomes γ_h·n_max·Q.
func (c Contention) Kappa(nh int) float64 {
	if nh <= 0 {
		return c.GammaH * float64(c.NMax) * math.Max(c.Q, 1)
	}
	return c.GammaV*float64(nh)*c.Q + c.GammaH*float64(c.NMax)/float64(nh)
}

// Decision is the scheduler's output: how many vaults grant GPU
// priority and the resulting stall penalties for each side.
type Decision struct {
	Policy Policy
	NH     int
	Kappa  float64
	// PIMDelay and GPUDelay are the κ components attributed to the
	// vault PEs and the host respectively (arbitrary impact units;
	// core scales them into seconds).
	PIMDelay, GPUDelay float64
}

// Arbitrate resolves one contention under the policy.
func Arbitrate(p Policy, c Contention) Decision {
	if c.NMax <= 0 {
		return Decision{Policy: p}
	}
	var nh int
	switch p {
	case GPUFirst:
		nh = c.NMax
	case PIMFirst:
		nh = 0
	case RMAS:
		nh = c.optimalNH()
	default:
		panic(fmt.Sprintf("sched: unknown policy %d", int(p)))
	}
	d := Decision{Policy: p, NH: nh, Kappa: c.Kappa(nh)}
	if nh <= 0 {
		d.GPUDelay = d.Kappa
	} else {
		d.PIMDelay = c.GammaV * float64(nh) * c.Q
		d.GPUDelay = c.GammaH * float64(c.NMax) / float64(nh)
	}
	return d
}

// optimalNH minimizes Eq. 15 over the integers 0..NMax: the continuous
// optimum √(n_max·γ_h/(Q·γ_v)) is evaluated against its integer
// neighbours and the endpoints.
func (c Contention) optimalNH() int {
	best, bestK := 0, c.Kappa(0)
	try := func(nh int) {
		if nh < 0 {
			nh = 0
		}
		if nh > c.NMax {
			nh = c.NMax
		}
		if k := c.Kappa(nh); k < bestK {
			best, bestK = nh, k
		}
	}
	if c.Q > 0 && c.GammaV > 0 {
		cont := math.Sqrt(float64(c.NMax) * c.GammaH / (c.Q * c.GammaV))
		try(int(math.Floor(cont)))
		try(int(math.Ceil(cont)))
	}
	try(1)
	try(c.NMax)
	return best
}
