package workload_test

import (
	"math"
	"testing"

	"pimcapsnet/internal/des"
	"pimcapsnet/internal/workload"
)

// TestScheduleDESCrossCheck replays generated schedules through the
// discrete-event engine and checks the offered rate the simulator
// observes against the shape's analytic rate function: every arrival
// fires as a DES event, windowed event counts must track the integral
// of RateAt over each window, and the engine must fire exactly one
// event per scheduled arrival. This pins the two halves of the
// capacity harness — schedule generation and event-driven replay — to
// the same analytic ground truth.
func TestScheduleDESCrossCheck(t *testing.T) {
	const rate, duration, window = 400.0, 20.0, 2.0
	kinds := []workload.ShapeKind{workload.ShapeConstant, workload.ShapeDiurnal, workload.ShapeBursty}
	for _, kind := range kinds {
		s := workload.NewShape(kind, rate)
		s.Period = window // one window per cycle, so windows are analytically identical
		sched := s.Schedule(duration, 21)

		eng := des.New()
		counts := make([]float64, int(duration/window))
		for _, a := range sched {
			eng.At(a, func() {
				w := int(eng.Now() / window)
				if w >= len(counts) {
					w = len(counts) - 1
				}
				counts[w]++
			})
		}
		end := eng.Run()
		if eng.Fired() != uint64(len(sched)) {
			t.Fatalf("%s: engine fired %d events for %d scheduled arrivals", kind, eng.Fired(), len(sched))
		}
		if end >= duration {
			t.Fatalf("%s: simulation ended at %g, beyond the %g horizon", kind, end, duration)
		}

		// Each window covers exactly one period, so the analytic count
		// per window is ExpectedArrivals over one period.
		want := s.ExpectedArrivals(window)
		for i, n := range counts {
			tol := 5 * math.Sqrt(want)
			if math.Abs(n-want) > tol {
				t.Errorf("%s: window %d saw %g arrivals, analytic %g (tolerance %g)", kind, i, n, want, tol)
			}
		}

		// And the whole-run offered rate matches the shape's mean rate.
		offered := float64(len(sched)) / duration
		if math.Abs(offered-rate) > 0.05*rate {
			t.Errorf("%s: offered rate %.1f req/s, want %.1f ±5%%", kind, offered, rate)
		}
	}
}
