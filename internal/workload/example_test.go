package workload_test

import (
	"fmt"

	"pimcapsnet/internal/workload"
)

// ExampleByName inspects a Table 1 benchmark and the routing
// intermediates that overwhelm GPU on-chip storage (Fig. 6a).
func ExampleByName() {
	b, _ := workload.ByName("Caps-MN1")
	fmt.Println(b)
	vars := b.RPVars()
	fmt.Printf("û footprint: %.0f MB\n", vars.UHat/(1<<20))
	fmt.Printf("ratio to P100's 5.31 MB on-chip: %.0fx\n", vars.Total()/(5.31*(1<<20)))
	// Output:
	// Caps-MN1(BS=100 L=1152 H=10 it=3)
	// û footprint: 70 MB
	// ratio to P100's 5.31 MB on-chip: 13x
}

// ExampleBenchmark_RPTotalFLOPs counts the routing procedure's
// arithmetic for one batch.
func ExampleBenchmark_RPTotalFLOPs() {
	b, _ := workload.ByName("Caps-SV1")
	fmt.Printf("%.2g FLOPs per batch\n", b.RPTotalFLOPs())
	// Output:
	// 2.5e+08 FLOPs per batch
}
