// Package workload encodes the paper's benchmark suite (Table 1) and
// an analytical operation/byte model of every CapsNet stage: the
// Conv/PrimaryCaps/FC layers the host GPU keeps, and the five routing
// procedure equations that PIM-CapsNet moves into memory. The same
// counts drive the GPU characterization model (internal/gpusim), the
// inter-vault distribution model (internal/distribute) and the energy
// model (internal/energy), so every experiment in the paper is
// evaluated against one consistent description of the work.
package workload

import "fmt"

// Bytes per FP32 scalar.
const WordBytes = 4

// Benchmark is one row of Table 1 plus the derived CapsNet-MNIST-like
// geometry needed to count Conv/PrimaryCaps/FC work.
type Benchmark struct {
	Name    string
	Dataset string
	// Table 1 configuration.
	BatchSize int // BS
	NumL      int // L capsules
	NumH      int // H capsules
	Iters     int // routing iterations
	// Capsule dimensions (CapsNet-MNIST: 8-D low, 16-D high).
	DimL, DimH int
	// Input geometry for the derived conv front end.
	InputC, InputH, InputW int
	// Conv front end (CapsNet-MNIST: 256 9×9 stride-1 filters).
	ConvChannels, ConvKernel, ConvStride int
	// PrimaryCaps conv (9×9 stride-2); PrimaryChannels is derived so
	// the primary-capsule count equals NumL.
	PrimaryChannels, PrimaryKernel, PrimaryStride int
	// TestSetSize is the number of inference inputs a full run
	// processes (the characterization figures report whole-test-set
	// times); batches = TestSetSize/BatchSize.
	TestSetSize int
}

// Batches returns the number of batches in a full inference run.
func (b Benchmark) Batches() int { return (b.TestSetSize + b.BatchSize - 1) / b.BatchSize }

// String implements fmt.Stringer.
func (b Benchmark) String() string {
	return fmt.Sprintf("%s(BS=%d L=%d H=%d it=%d)", b.Name, b.BatchSize, b.NumL, b.NumH, b.Iters)
}

// derive fills the geometry fields from the Table 1 row.
func derive(name, ds string, bs, nl, nh, iters, inC, inHW int) Benchmark {
	b := Benchmark{
		Name: name, Dataset: ds,
		BatchSize: bs, NumL: nl, NumH: nh, Iters: iters,
		DimL: 8, DimH: 16,
		InputC: inC, InputH: inHW, InputW: inHW,
		ConvChannels: 256, ConvKernel: 9, ConvStride: 1,
		PrimaryKernel: 9, PrimaryStride: 2,
		TestSetSize: 10000,
	}
	// Primary capsule channels so that channels·oh·ow = NumL.
	co := (inHW-b.ConvKernel)/b.ConvStride + 1
	po := (co-b.PrimaryKernel)/b.PrimaryStride + 1
	if nl%(po*po) != 0 {
		panic(fmt.Sprintf("workload: %s NumL=%d not divisible by primary grid %d", name, nl, po*po))
	}
	b.PrimaryChannels = nl / (po * po)
	return b
}

// Benchmarks is the paper's Table 1: 12 CapsNets across 4 dataset
// families with varying batch size, capsule counts and iterations.
var Benchmarks = []Benchmark{
	derive("Caps-MN1", "MNIST", 100, 1152, 10, 3, 1, 28),
	derive("Caps-MN2", "MNIST", 200, 1152, 10, 3, 1, 28),
	derive("Caps-MN3", "MNIST", 300, 1152, 10, 3, 1, 28),
	derive("Caps-CF1", "CIFAR10", 100, 2304, 11, 3, 3, 32),
	derive("Caps-CF2", "CIFAR10", 100, 3456, 11, 3, 3, 32),
	derive("Caps-CF3", "CIFAR10", 100, 4608, 11, 3, 3, 32),
	derive("Caps-EN1", "EMNIST Letter", 100, 1152, 26, 3, 1, 28),
	derive("Caps-EN2", "EMNIST Balanced", 100, 1152, 47, 3, 1, 28),
	derive("Caps-EN3", "EMNIST By Class", 100, 1152, 62, 3, 1, 28),
	derive("Caps-SV1", "SVHN", 100, 576, 10, 3, 3, 32),
	derive("Caps-SV2", "SVHN", 100, 576, 10, 6, 3, 32),
	derive("Caps-SV3", "SVHN", 100, 576, 10, 9, 3, 32),
}

// ByName returns the Table 1 benchmark with the given name.
func ByName(name string) (Benchmark, error) {
	for _, b := range Benchmarks {
		if b.Name == name {
			return b, nil
		}
	}
	return Benchmark{}, fmt.Errorf("workload: unknown benchmark %q", name)
}

// LayerKind identifies a CapsNet stage in the per-layer breakdown.
type LayerKind int

// The four stages of Fig. 4's breakdown.
const (
	LayerConv LayerKind = iota
	LayerLCaps
	LayerHCaps // the routing procedure
	LayerFC
)

// String implements fmt.Stringer.
func (k LayerKind) String() string {
	switch k {
	case LayerConv:
		return "Conv"
	case LayerLCaps:
		return "L Caps"
	case LayerHCaps:
		return "H Caps (RP)"
	case LayerFC:
		return "FC"
	}
	return fmt.Sprintf("LayerKind(%d)", int(k))
}

// LayerCost counts one layer's work for a whole batch.
type LayerCost struct {
	Kind LayerKind
	// FLOPs is the arithmetic operation count.
	FLOPs float64
	// BytesIn/BytesOut are the compulsory off-chip bytes (inputs +
	// weights, outputs) assuming a perfect cache.
	BytesIn, BytesOut float64
	// Intermediate is the size of the layer's live intermediate
	// variables; when it exceeds on-chip storage the GPU re-streams
	// it (Sec. 3.2 root cause 1).
	Intermediate float64
	// Shareable reports whether the intermediate state is shared
	// across batch elements (RP's intermediates are not, which is why
	// batching does not help — Observation 1).
	Shareable bool
	// SyncOps counts barrier-style aggregation points (Sec. 3.2 root
	// cause 2).
	SyncOps float64
	// Kernels is the number of kernel launches the stage needs.
	Kernels float64
}

// ConvCost models the front-end convolution for a whole batch.
func (b Benchmark) ConvCost() LayerCost {
	oh := (b.InputH-b.ConvKernel)/b.ConvStride + 1
	ow := (b.InputW-b.ConvKernel)/b.ConvStride + 1
	perImg := 2.0 * float64(b.ConvChannels) * float64(oh*ow) * float64(b.InputC*b.ConvKernel*b.ConvKernel)
	weights := float64(b.ConvChannels*b.InputC*b.ConvKernel*b.ConvKernel) * WordBytes
	in := float64(b.BatchSize*b.InputC*b.InputH*b.InputW) * WordBytes
	out := float64(b.BatchSize*b.ConvChannels*oh*ow) * WordBytes
	return LayerCost{
		Kind:    LayerConv,
		FLOPs:   perImg * float64(b.BatchSize),
		BytesIn: in + weights, BytesOut: out,
		Intermediate: weights, Shareable: true,
		SyncOps: 1, Kernels: 1,
	}
}

// ConvOutSize returns the conv layer's output spatial size.
func (b Benchmark) ConvOutSize() (int, int) {
	return (b.InputH-b.ConvKernel)/b.ConvStride + 1, (b.InputW-b.ConvKernel)/b.ConvStride + 1
}

// PrimaryCost models the PrimaryCaps conv + squash for a whole batch.
func (b Benchmark) PrimaryCost() LayerCost {
	ch, cw := b.ConvOutSize()
	po := (ch-b.PrimaryKernel)/b.PrimaryStride + 1
	cout := b.PrimaryChannels * b.DimL
	perImg := 2.0*float64(cout)*float64(po*po)*float64(b.ConvChannels*b.PrimaryKernel*b.PrimaryKernel) +
		float64(b.NumL)*float64(3*b.DimL+19) // squash per capsule
	weights := float64(cout*b.ConvChannels*b.PrimaryKernel*b.PrimaryKernel) * WordBytes
	in := float64(b.BatchSize*b.ConvChannels*ch*cw) * WordBytes
	out := float64(b.BatchSize*b.NumL*b.DimL) * WordBytes
	return LayerCost{
		Kind:    LayerLCaps,
		FLOPs:   perImg * float64(b.BatchSize),
		BytesIn: in + weights, BytesOut: out,
		Intermediate: weights, Shareable: true,
		SyncOps: 2, Kernels: 2,
	}
}

// FCCost models the paper's 512→1024→reconstruction decoder for a
// whole batch.
func (b Benchmark) FCCost() LayerCost {
	in0 := b.NumH * b.DimH
	recon := b.InputC * b.InputH * b.InputW
	flopsPer := 2.0 * float64(in0*512+512*1024+1024*recon)
	weights := float64(in0*512+512*1024+1024*recon) * WordBytes
	in := float64(b.BatchSize*in0) * WordBytes
	out := float64(b.BatchSize*recon) * WordBytes
	return LayerCost{
		Kind:    LayerFC,
		FLOPs:   flopsPer * float64(b.BatchSize),
		BytesIn: in + weights, BytesOut: out,
		Intermediate: weights, Shareable: true,
		SyncOps: 3, Kernels: 3,
	}
}

// RPVariables sizes the routing procedure's variables in bytes for one
// batch (Sec. 3.2 / Fig. 6a numerator).
type RPVariables struct {
	UHat    float64 // û: NB·NL·NH·CH — the dominant unshareable term
	S, V    float64 // s, v: NB·NH·CH each
	B, C    float64 // b, c: NL·NH each
	Weights float64 // W: NL·NH·CL·CH (shareable)
}

// Total returns the unshareable intermediate footprint (everything the
// routing iterations cycle through; weights excluded because they are
// shared and resident).
func (v RPVariables) Total() float64 { return v.UHat + v.S + v.V + v.B + v.C }

// RPVars computes the routing-variable sizes for the benchmark.
func (b Benchmark) RPVars() RPVariables {
	nb, nl, nh := float64(b.BatchSize), float64(b.NumL), float64(b.NumH)
	cl, ch := float64(b.DimL), float64(b.DimH)
	return RPVariables{
		UHat:    nb * nl * nh * ch * WordBytes,
		S:       nb * nh * ch * WordBytes,
		V:       nb * nh * ch * WordBytes,
		B:       nl * nh * WordBytes,
		C:       nl * nh * WordBytes,
		Weights: nl * nh * cl * ch * WordBytes,
	}
}

// RPEquation identifies one of the five routing equations.
type RPEquation int

// The five equations of Alg. 1.
const (
	EqPrediction  RPEquation = iota // Eq. 1: û = u×W
	EqWeightedSum                   // Eq. 2: s = Σ û·c
	EqSquash                        // Eq. 3: v = squash(s)
	EqAgreement                     // Eq. 4: b += Σ v·û
	EqSoftmax                       // Eq. 5: c = softmax(b)
)

// String implements fmt.Stringer.
func (e RPEquation) String() string {
	switch e {
	case EqPrediction:
		return "Eq1-prediction"
	case EqWeightedSum:
		return "Eq2-weighted-sum"
	case EqSquash:
		return "Eq3-squash"
	case EqAgreement:
		return "Eq4-agreement"
	case EqSoftmax:
		return "Eq5-softmax"
	}
	return fmt.Sprintf("RPEquation(%d)", int(e))
}

// RPEquationFLOPs returns the arithmetic work of one execution of the
// given equation over the whole batch, using the paper's per-term
// counts from Eqs. 6–11: (2CL−1) MAC-ops per û scalar, (2NL−1) per
// aggregation scalar, (3CH+19) per squash vector, (2CH−1) per
// agreement dot product, and ~5 ops per softmax element (exp + sum +
// div as the PE executes them).
func (b Benchmark) RPEquationFLOPs(eq RPEquation) float64 {
	nb, nl, nh := float64(b.BatchSize), float64(b.NumL), float64(b.NumH)
	cl, ch := float64(b.DimL), float64(b.DimH)
	switch eq {
	case EqPrediction:
		return nb * nl * nh * ch * (2*cl - 1)
	case EqWeightedSum:
		return nb * nh * ch * (2*nl - 1)
	case EqSquash:
		return nb * nh * (3*ch + 19)
	case EqAgreement:
		return nb * nl * nh * (2*ch - 1)
	case EqSoftmax:
		return nl * nh * 5
	}
	panic(fmt.Sprintf("workload: unknown equation %v", eq))
}

// RPTotalFLOPs returns the routing procedure's arithmetic work for a
// batch: Eq. 1 once, Eqs. 2–5 once per iteration (the paper's
// simplified Eq. 7 structure).
func (b Benchmark) RPTotalFLOPs() float64 {
	t := b.RPEquationFLOPs(EqPrediction)
	perIter := b.RPEquationFLOPs(EqWeightedSum) + b.RPEquationFLOPs(EqSquash) +
		b.RPEquationFLOPs(EqAgreement) + b.RPEquationFLOPs(EqSoftmax)
	return t + float64(b.Iters)*perIter
}

// RPCost models the routing procedure for a whole batch on a device
// with the given on-chip capacity in bytes. The traffic model captures
// Sec. 3.2's root cause: û (plus the smaller s/v/b/c) is touched twice
// per iteration (Eq. 2 read, Eq. 4 read) and cannot stay on chip, so
// each touch above the resident fraction goes off-chip.
func (b Benchmark) RPCost(onChipBytes float64) LayerCost {
	vars := b.RPVars()
	// Compulsory traffic: u in, W in, û produced once, v out.
	uIn := float64(b.BatchSize*b.NumL*b.DimL) * WordBytes
	compulsory := uIn + vars.Weights + vars.UHat + vars.V

	// Iterative traffic: per iteration û is read by Eq. 2 and Eq. 4;
	// s/v are written+read; b/c written+read. The on-chip fraction is
	// served from SRAM.
	perIter := 2*vars.UHat + 2*(vars.S+vars.V) + 2*(vars.B+vars.C)
	resident := onChipBytes / (vars.Total())
	if resident > 1 {
		resident = 1
	}
	missFactor := 1 - resident
	traffic := compulsory + float64(b.Iters)*perIter*missFactor

	// Synchronization: every aggregation in Eqs. 2 and 4 plus the
	// softmax reduction forms a barrier per (j) or (i,j) tile group;
	// model one barrier per kernel per iteration plus the
	// block-level syncthreads proportional to aggregation tiles.
	aggTiles := float64(b.BatchSize*b.NumH) /* Eq.2 */ + float64(b.NumL*b.NumH)/32 /* Eq.4 pre-agg warps */
	syncOps := float64(b.Iters) * (aggTiles + float64(b.NumL))
	kernels := 1 + float64(b.Iters)*4

	return LayerCost{
		Kind:         LayerHCaps,
		FLOPs:        b.RPTotalFLOPs(),
		BytesIn:      traffic,
		BytesOut:     vars.V,
		Intermediate: vars.Total(),
		Shareable:    false,
		SyncOps:      syncOps,
		Kernels:      kernels,
	}
}

// Layers returns the four per-batch layer costs in network order for a
// device with the given on-chip bytes.
func (b Benchmark) Layers(onChipBytes float64) []LayerCost {
	return []LayerCost{b.ConvCost(), b.PrimaryCost(), b.RPCost(onChipBytes), b.FCCost()}
}
