//pimcaps:bitexact

package workload

import (
	"strings"
	"testing"
)

func TestBenchmarksMatchTable1(t *testing.T) {
	want := []struct {
		name    string
		ds      string
		bs, l   int
		h, iter int
	}{
		{"Caps-MN1", "MNIST", 100, 1152, 10, 3},
		{"Caps-MN2", "MNIST", 200, 1152, 10, 3},
		{"Caps-MN3", "MNIST", 300, 1152, 10, 3},
		{"Caps-CF1", "CIFAR10", 100, 2304, 11, 3},
		{"Caps-CF2", "CIFAR10", 100, 3456, 11, 3},
		{"Caps-CF3", "CIFAR10", 100, 4608, 11, 3},
		{"Caps-EN1", "EMNIST Letter", 100, 1152, 26, 3},
		{"Caps-EN2", "EMNIST Balanced", 100, 1152, 47, 3},
		{"Caps-EN3", "EMNIST By Class", 100, 1152, 62, 3},
		{"Caps-SV1", "SVHN", 100, 576, 10, 3},
		{"Caps-SV2", "SVHN", 100, 576, 10, 6},
		{"Caps-SV3", "SVHN", 100, 576, 10, 9},
	}
	if len(Benchmarks) != len(want) {
		t.Fatalf("have %d benchmarks, want %d", len(Benchmarks), len(want))
	}
	for i, w := range want {
		b := Benchmarks[i]
		if b.Name != w.name || b.Dataset != w.ds || b.BatchSize != w.bs ||
			b.NumL != w.l || b.NumH != w.h || b.Iters != w.iter {
			t.Fatalf("row %d = %+v, want %+v", i, b, w)
		}
		if b.DimL != 8 || b.DimH != 16 {
			t.Fatalf("%s capsule dims %d/%d, want 8/16", b.Name, b.DimL, b.DimH)
		}
	}
}

func TestByName(t *testing.T) {
	b, err := ByName("Caps-EN2")
	if err != nil || b.NumH != 47 {
		t.Fatalf("ByName: %v %+v", err, b)
	}
	if _, err := ByName("Caps-XX9"); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestPrimaryGeometryConsistent(t *testing.T) {
	for _, b := range Benchmarks {
		ch, cw := b.ConvOutSize()
		if ch <= 0 || cw <= 0 {
			t.Fatalf("%s conv output %dx%d", b.Name, ch, cw)
		}
		po := (ch-b.PrimaryKernel)/b.PrimaryStride + 1
		if b.PrimaryChannels*po*po != b.NumL {
			t.Fatalf("%s primary grid %d·%d² = %d != NumL %d", b.Name, b.PrimaryChannels, po, b.PrimaryChannels*po*po, b.NumL)
		}
	}
}

func TestRPVarsDominatedByUHat(t *testing.T) {
	for _, b := range Benchmarks {
		v := b.RPVars()
		if v.UHat <= v.S+v.V+v.B+v.C {
			t.Fatalf("%s û (%.0f) should dominate the intermediates", b.Name, v.UHat)
		}
		// Sanity for Caps-MN1: û = 100·1152·10·16·4 bytes.
		if b.Name == "Caps-MN1" {
			want := 100.0 * 1152 * 10 * 16 * 4
			if v.UHat != want {
				t.Fatalf("Caps-MN1 û = %v, want %v", v.UHat, want)
			}
		}
	}
}

func TestIntermediatesExceedGPUStorage(t *testing.T) {
	// Fig. 6a: intermediate variables exceed on-chip storage by 41×
	// or more across all benchmarks for every evaluated GPU (largest
	// on-chip storage is 16 MB on V100).
	const v100 = 16 << 20
	for _, b := range Benchmarks {
		ratio := b.RPVars().Total() / v100
		if ratio < 1 {
			t.Fatalf("%s intermediates fit on chip (ratio %.1f) — contradicts Fig. 6a", b.Name, ratio)
		}
	}
}

func TestRPCostTrafficShrinksWithOnChip(t *testing.T) {
	b := Benchmarks[0]
	small := b.RPCost(1.73 * (1 << 20))
	large := b.RPCost(16 * (1 << 20))
	if large.BytesIn >= small.BytesIn {
		t.Fatal("larger on-chip storage must reduce off-chip traffic")
	}
	huge := b.RPCost(1e12)
	if huge.BytesIn >= small.BytesIn/2 {
		t.Fatal("infinite cache must eliminate iterative traffic")
	}
}

func TestRPCostUnshareable(t *testing.T) {
	c := Benchmarks[0].RPCost(4 << 20)
	if c.Shareable {
		t.Fatal("RP intermediates must be marked unshareable (Observation 1)")
	}
	if c.Kind != LayerHCaps {
		t.Fatalf("RP layer kind %v", c.Kind)
	}
}

func TestRPFLOPsScaleWithConfig(t *testing.T) {
	mn1, _ := ByName("Caps-MN1")
	mn3, _ := ByName("Caps-MN3")
	if mn3.RPTotalFLOPs() <= mn1.RPTotalFLOPs() {
		t.Fatal("3× batch must increase RP FLOPs")
	}
	sv1, _ := ByName("Caps-SV1")
	sv3, _ := ByName("Caps-SV3")
	if sv3.RPTotalFLOPs() <= sv1.RPTotalFLOPs() {
		t.Fatal("3× iterations must increase RP FLOPs")
	}
	cf1, _ := ByName("Caps-CF1")
	cf3, _ := ByName("Caps-CF3")
	if cf3.RPTotalFLOPs() <= cf1.RPTotalFLOPs() {
		t.Fatal("2× L capsules must increase RP FLOPs")
	}
}

func TestRPEquationFLOPsKnown(t *testing.T) {
	b, _ := ByName("Caps-MN1")
	// Eq. 1: NB·NL·NH·CH·(2CL−1) = 100·1152·10·16·15.
	want := 100.0 * 1152 * 10 * 16 * 15
	if got := b.RPEquationFLOPs(EqPrediction); got != want {
		t.Fatalf("Eq1 FLOPs = %v, want %v", got, want)
	}
	// Eq. 3: NB·NH·(3CH+19) = 100·10·67.
	if got := b.RPEquationFLOPs(EqSquash); got != 100*10*67 {
		t.Fatalf("Eq3 FLOPs = %v, want %v", got, 100*10*67)
	}
}

func TestLayerCostsPopulated(t *testing.T) {
	for _, b := range Benchmarks {
		layers := b.Layers(5.31 * (1 << 20))
		if len(layers) != 4 {
			t.Fatalf("%s: %d layers", b.Name, len(layers))
		}
		kinds := map[LayerKind]bool{}
		for _, l := range layers {
			if l.FLOPs <= 0 || l.BytesIn <= 0 || l.BytesOut <= 0 {
				t.Fatalf("%s %v: non-positive cost %+v", b.Name, l.Kind, l)
			}
			kinds[l.Kind] = true
		}
		if len(kinds) != 4 {
			t.Fatalf("%s: duplicate layer kinds", b.Name)
		}
	}
}

func TestBatches(t *testing.T) {
	b, _ := ByName("Caps-MN1")
	if b.Batches() != 100 {
		t.Fatalf("Batches = %d, want 100", b.Batches())
	}
	b2, _ := ByName("Caps-MN3")
	if b2.Batches() != 34 { // ceil(10000/300)
		t.Fatalf("Batches = %d, want 34", b2.Batches())
	}
}

func TestStringers(t *testing.T) {
	if !strings.Contains(Benchmarks[0].String(), "Caps-MN1") {
		t.Fatal("Benchmark.String missing name")
	}
	for _, k := range []LayerKind{LayerConv, LayerLCaps, LayerHCaps, LayerFC} {
		if k.String() == "" || strings.HasPrefix(k.String(), "LayerKind(") {
			t.Fatalf("LayerKind %d has no name", k)
		}
	}
	for _, e := range []RPEquation{EqPrediction, EqWeightedSum, EqSquash, EqAgreement, EqSoftmax} {
		if !strings.HasPrefix(e.String(), "Eq") {
			t.Fatalf("RPEquation %d has no name", e)
		}
	}
}
