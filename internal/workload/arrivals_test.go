//pimcaps:bitexact

package workload

import (
	"math"
	"sort"
	"testing"
)

// allShapes returns one configured shape per kind at the given rate,
// with a short period so multi-period invariants are cheap to check.
func allShapes(rate float64) []Shape {
	kinds := []ShapeKind{ShapeConstant, ShapeDiurnal, ShapeBursty, ShapeAdversarial}
	out := make([]Shape, len(kinds))
	for i, k := range kinds {
		s := NewShape(k, rate)
		s.Period = 2
		out[i] = s
	}
	return out
}

// TestScheduleDeterminism: arrival schedules are a pure function of
// (shape, duration, seed) — the whole point of replayable load — and
// different seeds give different draws for the stochastic shapes.
func TestScheduleDeterminism(t *testing.T) {
	for _, s := range allShapes(200) {
		a := s.Schedule(10, 42)
		b := s.Schedule(10, 42)
		if len(a) != len(b) {
			t.Fatalf("%s: same seed, different lengths %d vs %d", s.Kind, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: same seed diverges at arrival %d: %g vs %g", s.Kind, i, a[i], b[i])
			}
		}
		c := s.Schedule(10, 43)
		same := len(a) == len(c)
		if same {
			for i := range a {
				if a[i] != c[i] {
					same = false
					break
				}
			}
		}
		if same {
			t.Errorf("%s: seeds 42 and 43 produced identical schedules", s.Kind)
		}
	}
}

// TestScheduleSortedInRange: every schedule ascends and stays inside
// [0, duration).
func TestScheduleSortedInRange(t *testing.T) {
	const duration = 7.3
	for _, s := range allShapes(150) {
		sched := s.Schedule(duration, 7)
		if !sort.Float64sAreSorted(sched) {
			t.Fatalf("%s: schedule not sorted", s.Kind)
		}
		if len(sched) == 0 {
			t.Fatalf("%s: empty schedule at rate 150 over %gs", s.Kind, duration)
		}
		if sched[0] < 0 || sched[len(sched)-1] >= duration {
			t.Fatalf("%s: arrivals [%g, %g] escape [0, %g)", s.Kind, sched[0], sched[len(sched)-1], duration)
		}
	}
}

// TestScheduleOfferedRate: the realized arrival count matches the
// analytic expectation within statistical tolerance (Poisson σ=√n, so
// 5σ on ~10k arrivals is a ~5% band that keeps flakes negligible).
func TestScheduleOfferedRate(t *testing.T) {
	const rate, duration = 500.0, 20.0
	for _, s := range allShapes(rate) {
		sched := s.Schedule(duration, 11)
		want := s.ExpectedArrivals(duration)
		got := float64(len(sched))
		tol := 5 * math.Sqrt(want)
		if math.Abs(got-want) > tol {
			t.Errorf("%s: %g arrivals, analytic expectation %g (tolerance %g)", s.Kind, got, want, tol)
		}
	}
}

// TestDiurnalPeriodInvariant: the diurnal swing shows up where the
// period says it should — the rising half of each cycle (sin > 0)
// must hold more arrivals than the falling half, and per-period
// totals must repeat across periods.
func TestDiurnalPeriodInvariant(t *testing.T) {
	s := NewShape(ShapeDiurnal, 400)
	s.Period = 4
	s.Amplitude = 0.8
	const periods = 8
	duration := s.Period * periods
	sched := s.Schedule(duration, 3)

	var high, low float64
	perPeriod := make([]float64, periods)
	for _, a := range sched {
		if s.phase(a) < 0.5 {
			high++
		} else {
			low++
		}
		perPeriod[int(a/s.Period)]++
	}
	// Analytic halves: Rate·P/2 · (1 ± 2A/π).
	ratio := high / low
	wantRatio := (1 + 2*s.Amplitude/math.Pi) / (1 - 2*s.Amplitude/math.Pi)
	if math.Abs(ratio-wantRatio) > 0.35*wantRatio {
		t.Errorf("peak/trough half ratio %.2f, analytic %.2f", ratio, wantRatio)
	}
	mean := float64(len(sched)) / periods
	for i, n := range perPeriod {
		if math.Abs(n-mean) > 6*math.Sqrt(mean) {
			t.Errorf("period %d holds %g arrivals, mean %g — periodicity broken", i, n, mean)
		}
	}
}

// TestBurstAmplitudeInvariant: the burst windows carry their share of
// the arrivals at the configured amplitude — the fraction of arrivals
// inside the burst (phase < BurstFraction) equals BurstFactor·BurstFraction.
func TestBurstAmplitudeInvariant(t *testing.T) {
	s := NewShape(ShapeBursty, 400)
	s.Period = 2
	s.BurstFactor = 8
	s.BurstFraction = 0.1
	sched := s.Schedule(20, 5)

	var inBurst float64
	for _, a := range sched {
		if s.phase(a) < s.BurstFraction {
			inBurst++
		}
	}
	gotShare := inBurst / float64(len(sched))
	wantShare := s.BurstFactor * s.BurstFraction
	if math.Abs(gotShare-wantShare) > 0.1 {
		t.Errorf("burst windows hold %.1f%% of arrivals, want %.1f%%", 100*gotShare, 100*wantShare)
	}
}

// TestAdversarialSpikes: the adversarial schedule is exactly
// Rate·Period arrivals per spike, every arrival within the jitter
// window of its period boundary.
func TestAdversarialSpikes(t *testing.T) {
	s := NewShape(ShapeAdversarial, 300)
	s.Period = 2
	const duration = 10.0
	sched := s.Schedule(duration, 9)

	spike := int(math.Round(s.Rate * s.Period))
	wantN := spike * int(math.Ceil(duration/s.Period))
	if len(sched) != wantN {
		t.Fatalf("%d arrivals, want exactly %d (%d spikes × %d)", len(sched), wantN, wantN/spike, spike)
	}
	jitter := s.adversarialJitter()
	for _, a := range sched {
		off := math.Mod(a, s.Period)
		if off > jitter {
			t.Fatalf("arrival %g sits %.4gs past its period boundary, jitter window is %.4gs", a, off, jitter)
		}
	}
}

// TestShapeValidate covers the rejection paths.
func TestShapeValidate(t *testing.T) {
	cases := []struct {
		name string
		s    Shape
	}{
		{"zero rate", Shape{Kind: ShapeConstant}},
		{"no period", Shape{Kind: ShapeDiurnal, Rate: 10, Amplitude: 0.5}},
		{"amplitude above 1", Shape{Kind: ShapeDiurnal, Rate: 10, Period: 5, Amplitude: 1.5}},
		{"burst factor below 1", Shape{Kind: ShapeBursty, Rate: 10, Period: 5, BurstFactor: 0.5, BurstFraction: 0.1}},
		{"burst mass above mean", Shape{Kind: ShapeBursty, Rate: 10, Period: 5, BurstFactor: 20, BurstFraction: 0.5}},
	}
	for _, c := range cases {
		if err := c.s.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", c.name, c.s)
		}
	}
	for _, s := range allShapes(10) {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: Validate rejected the default shape: %v", s.Kind, err)
		}
	}
}

// TestShapeByName round-trips every kind and rejects junk.
func TestShapeByName(t *testing.T) {
	for _, k := range []ShapeKind{ShapeConstant, ShapeDiurnal, ShapeBursty, ShapeAdversarial} {
		got, err := ShapeByName(k.String())
		if err != nil || got != k {
			t.Errorf("ShapeByName(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := ShapeByName("sawtooth"); err == nil {
		t.Error("ShapeByName accepted an unknown shape")
	}
}
