package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// This file generates open-loop arrival schedules: the request
// timestamps a load generator fires on regardless of how many
// requests are still in flight. The shapes model a production day
// compressed into a test window — a flat floor, a diurnal swing, an
// on/off burst cycle, and a synchronized-spike adversary — with one
// shared contract: every shape's time-averaged rate equals Rate, so
// sweeping "offered rate" means the same thing under every shape.

// ShapeKind selects an arrival-rate profile.
type ShapeKind int

const (
	// ShapeConstant is a homogeneous Poisson stream at Rate.
	ShapeConstant ShapeKind = iota
	// ShapeDiurnal modulates Rate sinusoidally with the given Period
	// and Amplitude — a day of traffic compressed into Period seconds.
	ShapeDiurnal
	// ShapeBursty alternates an on-burst window (Rate·BurstFactor for
	// BurstFraction of each Period) with a quiet floor chosen so the
	// mean stays at Rate.
	ShapeBursty
	// ShapeAdversarial concentrates each period's entire arrival mass
	// into one synchronized spike at the period boundary — the worst
	// case for queueing, e.g. fleet-wide retry storms or cron-aligned
	// clients.
	ShapeAdversarial
)

// String implements fmt.Stringer.
func (k ShapeKind) String() string {
	switch k {
	case ShapeConstant:
		return "constant"
	case ShapeDiurnal:
		return "diurnal"
	case ShapeBursty:
		return "bursty"
	case ShapeAdversarial:
		return "adversarial"
	}
	return fmt.Sprintf("ShapeKind(%d)", int(k))
}

// ShapeByName parses a shape name as used on command lines.
func ShapeByName(name string) (ShapeKind, error) {
	for _, k := range []ShapeKind{ShapeConstant, ShapeDiurnal, ShapeBursty, ShapeAdversarial} {
		if k.String() == name {
			return k, nil
		}
	}
	return 0, fmt.Errorf("workload: unknown shape %q (want constant|diurnal|bursty|adversarial)", name)
}

// Shape is a traffic profile: a mean offered rate plus the parameters
// of its time structure.
type Shape struct {
	Kind ShapeKind
	// Rate is the time-averaged offered rate in requests/second for
	// every Kind.
	Rate float64
	// Period is the cycle length in seconds (diurnal day, burst cycle,
	// adversarial spike interval). Ignored by ShapeConstant.
	Period float64
	// Amplitude is the diurnal swing as a fraction of Rate in [0, 1]:
	// the instantaneous rate travels Rate·(1±Amplitude).
	Amplitude float64
	// BurstFactor is the on-burst rate multiple (> 1) for ShapeBursty.
	BurstFactor float64
	// BurstFraction is the fraction of each period spent bursting, in
	// (0, 1); BurstFactor·BurstFraction must stay ≤ 1 so the off-burst
	// floor Rate·(1−BurstFactor·BurstFraction)/(1−BurstFraction)
	// remains non-negative.
	BurstFraction float64
}

// NewShape returns a shape of the given kind and mean rate with the
// default time structure: a 10-second "compressed day" period, ±80%
// diurnal swing, and 8× bursts for 10% of each cycle.
func NewShape(kind ShapeKind, rate float64) Shape {
	return Shape{
		Kind: kind, Rate: rate,
		Period: 10, Amplitude: 0.8,
		BurstFactor: 8, BurstFraction: 0.1,
	}
}

// Validate reports whether the shape's parameters are coherent.
func (s Shape) Validate() error {
	if !(s.Rate > 0) {
		return fmt.Errorf("workload: shape rate %g must be positive", s.Rate)
	}
	if s.Kind != ShapeConstant && !(s.Period > 0) {
		return fmt.Errorf("workload: %s shape needs a positive period, got %g", s.Kind, s.Period)
	}
	switch s.Kind {
	case ShapeDiurnal:
		if s.Amplitude < 0 || s.Amplitude > 1 {
			return fmt.Errorf("workload: diurnal amplitude %g outside [0, 1]", s.Amplitude)
		}
	case ShapeBursty:
		if !(s.BurstFactor > 1) {
			return fmt.Errorf("workload: burst factor %g must exceed 1", s.BurstFactor)
		}
		if !(s.BurstFraction > 0) || !(s.BurstFraction < 1) {
			return fmt.Errorf("workload: burst fraction %g outside (0, 1)", s.BurstFraction)
		}
		if s.BurstFactor*s.BurstFraction > 1 {
			return fmt.Errorf("workload: burst factor %g × fraction %g exceeds 1: the off-burst floor would be negative",
				s.BurstFactor, s.BurstFraction)
		}
	case ShapeConstant, ShapeAdversarial:
	default:
		return fmt.Errorf("workload: unknown shape kind %d", int(s.Kind))
	}
	return nil
}

// RateAt returns the instantaneous arrival rate at time t seconds
// into the run. For ShapeAdversarial the instantaneous rate is a
// spike train with no finite pointwise value, so RateAt reports the
// mean Rate; use Schedule for its actual arrival pattern.
func (s Shape) RateAt(t float64) float64 {
	switch s.Kind {
	case ShapeDiurnal:
		return s.Rate * (1 + s.Amplitude*math.Sin(2*math.Pi*t/s.Period))
	case ShapeBursty:
		if s.phase(t) < s.BurstFraction {
			return s.Rate * s.BurstFactor
		}
		return s.burstFloor()
	default:
		return s.Rate
	}
}

// burstFloor returns the off-burst rate that preserves the mean:
// Rate·(1−BurstFactor·BurstFraction)/(1−BurstFraction).
func (s Shape) burstFloor() float64 {
	return s.Rate * (1 - s.BurstFactor*s.BurstFraction) / (1 - s.BurstFraction)
}

// phase returns t's position within the current period in [0, 1).
func (s Shape) phase(t float64) float64 {
	p := math.Mod(t/s.Period, 1)
	if p < 0 {
		p += 1
	}
	return p
}

// MaxRate returns the peak instantaneous rate — the thinning envelope
// for schedule generation.
func (s Shape) MaxRate() float64 {
	switch s.Kind {
	case ShapeDiurnal:
		return s.Rate * (1 + s.Amplitude)
	case ShapeBursty:
		return s.Rate * s.BurstFactor
	default:
		return s.Rate
	}
}

// ExpectedArrivals returns the analytic expected arrival count over
// [0, duration): the integral of the rate function (exact count for
// the deterministic adversarial spike train).
func (s Shape) ExpectedArrivals(duration float64) float64 {
	switch s.Kind {
	case ShapeDiurnal:
		// ∫ Rate·(1 + A·sin(2πt/P)) dt
		w := 2 * math.Pi / s.Period
		return s.Rate*duration + s.Rate*s.Amplitude*(1-math.Cos(w*duration))/w
	case ShapeBursty:
		full := math.Floor(duration / s.Period)
		rem := duration - full*s.Period
		burst := math.Min(rem, s.BurstFraction*s.Period)
		quiet := rem - burst
		return s.Rate*s.BurstFactor*(full*s.BurstFraction*s.Period+burst) +
			s.burstFloor()*(full*(1-s.BurstFraction)*s.Period+quiet)
	case ShapeAdversarial:
		spikes := math.Ceil(duration / s.Period)
		return spikes * math.Round(s.Rate*s.Period)
	default:
		return s.Rate * duration
	}
}

// adversarialJitter bounds the seeded sub-spike jitter that breaks
// exact timestamp ties inside one synchronized spike: 1ms, or 1/1000
// of the period if that is smaller.
func (s Shape) adversarialJitter() float64 {
	return math.Min(1e-3, s.Period/1000)
}

// Schedule generates the arrival offsets (seconds, ascending, within
// [0, duration)) for the shape, deterministically from the seed. The
// stochastic shapes draw a non-homogeneous Poisson process by
// Lewis–Shedler thinning against the MaxRate envelope; the
// adversarial shape is a deterministic spike train with seeded
// sub-millisecond jitter so same-seed runs replay identical schedules
// bit for bit.
func (s Shape) Schedule(duration float64, seed int64) []float64 {
	if err := s.Validate(); err != nil {
		panic(err)
	}
	if !(duration > 0) {
		panic(fmt.Sprintf("workload: schedule duration %g must be positive", duration))
	}
	rng := rand.New(rand.NewSource(seed))
	if s.Kind == ShapeAdversarial {
		spike := int(math.Round(s.Rate * s.Period))
		jitter := s.adversarialJitter()
		var out []float64
		for t0 := 0.0; t0 < duration; t0 += s.Period {
			for i := 0; i < spike; i++ {
				t := t0 + rng.Float64()*jitter
				if t < duration {
					out = append(out, t)
				}
			}
		}
		sort.Float64s(out)
		return out
	}
	env := s.MaxRate()
	out := make([]float64, 0, int(s.Rate*duration)+16)
	for t := rng.ExpFloat64() / env; t < duration; t += rng.ExpFloat64() / env {
		if rng.Float64()*env <= s.RateAt(t) {
			out = append(out, t)
		}
	}
	return out
}
